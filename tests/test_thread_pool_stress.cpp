// Concurrency stress suite for api::ThreadPool and its two production
// consumers: the blocked-gemm column-panel path and the batch analyzer.
// This suite exists primarily to be run under ThreadSanitizer (the `tsan`
// CI job builds with -DSHHPASS_TSAN=ON and SHHPASS_GEMM_THREADS=3): every
// test doubles as a race detector target, and several pin the lifecycle
// contract documented in api/thread_pool.hpp — a throwing task never
// poisons the pool, destruction drains deterministically, nested
// submission is legal, and setGemmThreads is safe against in-flight gemms.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/analyzer.hpp"
#include "api/thread_pool.hpp"
#include "circuits/generators.hpp"
#include "linalg/blas.hpp"
#include "test_support.hpp"

namespace shhpass {
namespace {

using api::AnalysisReport;
using api::AnalysisRequest;
using api::AnalyzerOptions;
using api::PassivityAnalyzer;
using api::Result;
using api::ThreadPool;
using linalg::Matrix;
using testing::randomMatrix;

/// Exact bitwise matrix equality (the determinism contract is bitwise,
/// so approxEqual would be too weak here).
bool bitwiseEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      if (a(i, j) != b(i, j)) return false;
  return true;
}

/// Smallest square size whose m*n*k crosses the threaded-gemm floor, so
/// the column-panel fan-out actually engages.
constexpr std::size_t kThreadedGemmN = 224;
static_assert(kThreadedGemmN * kThreadedGemmN * kThreadedGemmN >=
              linalg::kGemmThreadedFlopFloor);

/// RAII guard: every test leaves the process-wide kernel pool serial.
struct SerialGemmAtExit {
  ~SerialGemmAtExit() { linalg::setGemmThreads(1); }
};

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPoolStress, ConcurrentEnqueueAndDrain) {
  ThreadPool pool(4);
  std::atomic<std::size_t> ran{0};
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kJobsPerProducer = 500;

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &ran] {
      for (std::size_t i = 0; i < kJobsPerProducer; ++i)
        pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  for (std::thread& t : producers) t.join();
  pool.wait();
  EXPECT_EQ(ran.load(), kProducers * kJobsPerProducer);
  EXPECT_GE(pool.jobsExecuted(), kProducers * kJobsPerProducer);
}

TEST(ThreadPoolStress, ThrowingTaskDoesNotPoisonThePool) {
  ThreadPool pool(2);
  std::atomic<std::size_t> ran{0};
  for (std::size_t i = 0; i < 16; ++i) {
    if (i % 5 == 0) {
      pool.submit([] { throw std::runtime_error("task failure"); });
    } else {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
  }
  // The first exception surfaces at the barrier...
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // ...but every non-throwing task still ran (4 of the 16 threw), and the
  // pool is fully usable afterwards: same workers, clean wait.
  EXPECT_EQ(ran.load(), 12u);
  for (std::size_t i = 0; i < 32; ++i)
    pool.submit([&ran] { ran.fetch_add(1); });
  EXPECT_NO_THROW(pool.wait());
  EXPECT_EQ(ran.load(), 44u);
  EXPECT_EQ(pool.jobsExecuted(), 48u);  // throwing tasks count as executed
}

TEST(ThreadPoolStress, DestructionDrainsQueuedWorkDeterministically) {
  std::atomic<std::size_t> ran{0};
  constexpr std::size_t kJobs = 200;
  {
    ThreadPool pool(2);
    // Head jobs sleep so a real backlog is queued when the destructor
    // runs; drain semantics require every one of them to execute anyway.
    for (std::size_t i = 0; i < kJobs; ++i) {
      pool.submit([&ran, i] {
        if (i < 4)
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No wait(): destruction itself must drain.
  }
  EXPECT_EQ(ran.load(), kJobs);
}

TEST(ThreadPoolStress, DestructionWithPendingExceptionIsSafe) {
  // An exception that was never observed via wait() is dropped at
  // destruction — not rethrown, not std::terminate.
  ThreadPool pool(1);
  pool.submit([] { throw std::runtime_error("never observed"); });
}

TEST(ThreadPoolStress, NestedSubmitFromWorker) {
  ThreadPool pool(3);
  std::atomic<std::size_t> parents{0};
  std::atomic<std::size_t> children{0};
  constexpr std::size_t kParents = 24;
  constexpr std::size_t kChildrenPerParent = 5;
  for (std::size_t p = 0; p < kParents; ++p) {
    pool.submit([&pool, &parents, &children] {
      for (std::size_t c = 0; c < kChildrenPerParent; ++c)
        pool.submit(
            [&children] { children.fetch_add(1, std::memory_order_relaxed); });
      parents.fetch_add(1, std::memory_order_relaxed);
    });
  }
  // wait() must account for work enqueued by the workers themselves.
  pool.wait();
  EXPECT_EQ(parents.load(), kParents);
  EXPECT_EQ(children.load(), kParents * kChildrenPerParent);
}

// ------------------------------------------------------- gemm kernel pool

TEST(ThreadPoolStress, GemmThreadLifecycleBypassesBitIdentically) {
  SerialGemmAtExit cleanup;
  const Matrix a = randomMatrix(kThreadedGemmN, kThreadedGemmN, 11);
  const Matrix b = randomMatrix(kThreadedGemmN, kThreadedGemmN, 12);

  auto blockedProduct = [&] {
    Matrix c(kThreadedGemmN, kThreadedGemmN);
    linalg::gemmBlocked(1.0, a, false, b, false, 0.0, c);
    return c;
  };

  linalg::setGemmThreads(1);  // structural bypass: no pool exists
  EXPECT_EQ(linalg::gemmThreads(), 1u);
  const Matrix serial = blockedProduct();

  linalg::setGemmThreads(3);
  EXPECT_EQ(linalg::gemmThreads(), 3u);
  EXPECT_TRUE(bitwiseEqual(serial, blockedProduct()));

  linalg::setGemmThreads(7);
  EXPECT_TRUE(bitwiseEqual(serial, blockedProduct()));

  // t == 0 resolves to hardware concurrency; whatever that is, the result
  // must stay bit-identical to the serial bypass.
  linalg::setGemmThreads(0);
  EXPECT_GE(linalg::gemmThreads(), 1u);
  EXPECT_TRUE(bitwiseEqual(serial, blockedProduct()));

  linalg::setGemmThreads(1);
  EXPECT_EQ(linalg::gemmThreads(), 1u);
  EXPECT_TRUE(bitwiseEqual(serial, blockedProduct()));
}

TEST(ThreadPoolStress, SetGemmThreadsRacingInFlightGemms) {
  // Reconfiguring the kernel pool while gemms are in flight must neither
  // race (TSan) nor change a single bit of any product: each gemm pins
  // the pool it started with.
  SerialGemmAtExit cleanup;
  const Matrix a = randomMatrix(kThreadedGemmN, kThreadedGemmN, 21);
  const Matrix b = randomMatrix(kThreadedGemmN, kThreadedGemmN, 22);

  linalg::setGemmThreads(1);
  Matrix expected(kThreadedGemmN, kThreadedGemmN);
  linalg::gemmBlocked(1.0, a, false, b, false, 0.0, expected);

  linalg::setGemmThreads(3);
  std::atomic<bool> stop{false};
  std::thread reconfigurer([&stop] {
    const std::size_t settings[] = {2, 3, 1, 4, 3};
    std::size_t k = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      linalg::setGemmThreads(settings[k % 5]);
      ++k;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> gemmers;
  for (std::size_t t = 0; t < 2; ++t) {
    gemmers.emplace_back([&] {
      for (std::size_t rep = 0; rep < 6; ++rep) {
        Matrix c(kThreadedGemmN, kThreadedGemmN);
        linalg::gemmBlocked(1.0, a, false, b, false, 0.0, c);
        if (!bitwiseEqual(c, expected)) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : gemmers) t.join();
  stop.store(true);
  reconfigurer.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

// ------------------------------------------------------------- batch layer

TEST(ThreadPoolStress, RunBatchUnderOversubscription) {
  // More batch workers than cores, nested over a threaded kernel pool:
  // the two pool layers (batch ThreadPool + shared gemm pool) interleave,
  // and every report must still decision-match its sequential twin.
  SerialGemmAtExit cleanup;
  linalg::setGemmThreads(3);

  std::vector<AnalysisRequest> batch;
  for (std::size_t k = 0; k < 12; ++k) {
    AnalysisRequest req;
    req.id = "stress-" + std::to_string(k);
    req.system =
        circuits::makeBenchmarkModel(15 + 2 * (k % 4), /*impulsive=*/k % 2 == 0);
    batch.push_back(std::move(req));
  }

  AnalyzerOptions opts;
  opts.threads = 4 * std::max(1u, std::thread::hardware_concurrency());
  PassivityAnalyzer analyzer(opts);

  std::vector<Result<AnalysisReport>> results = analyzer.runBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(results[i].ok())
        << batch[i].id << ": " << results[i].status().toString();
    Result<AnalysisReport> single = analyzer.analyze(batch[i]);
    ASSERT_TRUE(single.ok()) << batch[i].id;
    EXPECT_TRUE(results[i]->decisionEquals(*single)) << batch[i].id;
  }
}

TEST(ThreadPoolStress, ObserverSwapDuringConcurrentAnalyses) {
  // setStageObserver while analyses run on other threads: the slot is
  // mutex-guarded and snapshotted per analysis, so this is race-free and
  // every stage notification lands on whichever observer the analysis
  // started with.
  PassivityAnalyzer analyzer;
  const ds::DescriptorSystem sys = circuits::makeBenchmarkModel(15, true);

  std::atomic<std::size_t> notifications{0};
  std::atomic<bool> stop{false};
  std::thread swapper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      analyzer.setStageObserver([&notifications](const api::StageTrace&) {
        notifications.fetch_add(1, std::memory_order_relaxed);
      });
      analyzer.setStageObserver(nullptr);
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    // Leave a live observer installed for the tail assertions below.
    analyzer.setStageObserver([&notifications](const api::StageTrace&) {
      notifications.fetch_add(1, std::memory_order_relaxed);
    });
  });

  std::vector<std::thread> analysts;
  std::atomic<std::size_t> failures{0};
  for (std::size_t t = 0; t < 2; ++t) {
    analysts.emplace_back([&] {
      for (std::size_t rep = 0; rep < 10; ++rep) {
        Result<AnalysisReport> r = analyzer.analyze(sys);
        if (!r.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : analysts) t.join();
  stop.store(true);
  swapper.join();
  EXPECT_EQ(failures.load(), 0u);

  // With the post-race observer pinned, one analysis notifies once per
  // executed stage.
  const std::size_t before = notifications.load();
  Result<AnalysisReport> r = analyzer.analyze(sys);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(notifications.load() - before, r->stages.size());
}

// ----------------------------------------------------------------- TaskGraph
//
// Level-1 scheduling primitive (api/thread_pool.hpp TaskGraph). These
// tests pin the contract the stage-graph runner builds on: diamond
// dependency ordering, deterministic skip cascades past a throwing node,
// canonical (lowest-id) first-error selection, destruction with an
// unfinished graph, and the inline serial oracle mode.

TEST(TaskGraphStress, DiamondDependenciesOrderCorrectly) {
  for (std::size_t poolSize : {1u, 2u, 4u}) {
    ThreadPool pool(poolSize);
    api::TaskGraph graph(&pool);
    std::atomic<int> aDone{0}, bDone{0}, cDone{0};
    std::atomic<bool> orderOk{true};
    const auto a = graph.add("a", [&] { aDone.store(1); });
    const auto b = graph.add(
        "b",
        [&] {
          if (aDone.load() != 1) orderOk.store(false);
          bDone.store(1);
        },
        {a});
    const auto c = graph.add(
        "c",
        [&] {
          if (aDone.load() != 1) orderOk.store(false);
          cDone.store(1);
        },
        {a});
    const auto d = graph.add(
        "d",
        [&] {
          if (bDone.load() != 1 || cDone.load() != 1) orderOk.store(false);
        },
        {b, c});
    graph.run();
    graph.wait();
    EXPECT_TRUE(orderOk.load()) << "pool size " << poolSize;
    EXPECT_TRUE(graph.completed(a));
    EXPECT_TRUE(graph.completed(b));
    EXPECT_TRUE(graph.completed(c));
    EXPECT_TRUE(graph.completed(d));
    EXPECT_EQ(graph.executedCount(), 4u);
    EXPECT_EQ(graph.skippedCount(), 0u);
    EXPECT_GE(graph.criticalPathSeconds(), 0.0);
  }
}

TEST(TaskGraphStress, ThrowingMidGraphNodeSkipsDownstreamDeterministically) {
  // Shape: root -> {thrower, bystander}; thrower -> dep1 -> dep2.
  // Whatever the timing, the thrower's chain is skipped, the bystander
  // branch runs, and wait() rethrows the thrower's error.
  for (std::size_t poolSize : {1u, 2u, 4u}) {
    ThreadPool pool(poolSize);
    api::TaskGraph graph(&pool);
    std::atomic<std::size_t> ran{0};
    const auto root = graph.add("root", [&] { ran.fetch_add(1); });
    const auto thrower = graph.add(
        "thrower",
        [] { throw std::runtime_error("mid-graph failure"); }, {root});
    const auto bystander =
        graph.add("bystander", [&] { ran.fetch_add(1); }, {root});
    const auto dep1 = graph.add("dep1", [&] { ran.fetch_add(1); }, {thrower});
    const auto dep2 = graph.add("dep2", [&] { ran.fetch_add(1); }, {dep1});
    graph.run();
    EXPECT_THROW(graph.wait(), std::runtime_error);
    EXPECT_EQ(ran.load(), 2u);  // root + bystander only
    EXPECT_TRUE(graph.completed(root));
    EXPECT_TRUE(graph.completed(bystander));
    EXPECT_FALSE(graph.completed(thrower));
    EXPECT_TRUE(graph.skipped(dep1));
    EXPECT_TRUE(graph.skipped(dep2));
    EXPECT_EQ(graph.executedCount(), 3u);  // root, thrower, bystander
    EXPECT_EQ(graph.skippedCount(), 2u);
  }
}

TEST(TaskGraphStress, FirstErrorIsCanonicalNotTemporal) {
  // Two independent throwers race; wait() must always surface the
  // lowest-id one no matter which finishes first. Stagger the earlier
  // node to finish LAST so a temporal pick would get it wrong.
  for (int rep = 0; rep < 20; ++rep) {
    ThreadPool pool(4);
    api::TaskGraph graph(&pool);
    graph.add("slow-early", [] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      throw std::runtime_error("early");
    });
    graph.add("fast-late", [] { throw std::runtime_error("late"); });
    graph.run();
    std::string caught;
    try {
      graph.wait();
    } catch (const std::runtime_error& e) {
      caught = e.what();
    }
    EXPECT_EQ(caught, "early");
  }
}

TEST(TaskGraphStress, DestructionWithUnfinishedGraphBlocksUntilTerminal) {
  std::atomic<std::size_t> ran{0};
  ThreadPool pool(2);
  {
    api::TaskGraph graph(&pool);
    const auto a = graph.add("a", [&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ran.fetch_add(1);
    });
    graph.add("b", [&] { ran.fetch_add(1); }, {a});
    graph.add("c", [&] { ran.fetch_add(1); });
    graph.run();
    // No wait(): the destructor must block until every node is terminal
    // (running nodes finish, dependents launch and finish).
  }
  EXPECT_EQ(ran.load(), 3u);
  // Pool must still be usable afterwards.
  std::atomic<bool> again{false};
  pool.submit([&] { again.store(true); });
  pool.wait();
  EXPECT_TRUE(again.load());
}

TEST(TaskGraphStress, InlineSerialModeIsTheCanonicalOracle) {
  // pool == nullptr executes in canonical order on this thread, with the
  // same skip semantics as the pool mode.
  api::TaskGraph graph(nullptr);
  std::vector<std::string> order;
  const auto a = graph.add("a", [&] { order.push_back("a"); });
  const auto b = graph.add(
      "b", [&]() -> void { throw std::runtime_error("b failed"); }, {a});
  const auto c = graph.add("c", [&] { order.push_back("c"); }, {a});
  const auto d = graph.add("d", [&] { order.push_back("d"); }, {b});
  graph.run();
  EXPECT_THROW(graph.wait(), std::runtime_error);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "a");
  EXPECT_EQ(order[1], "c");
  EXPECT_TRUE(graph.completed(a));
  EXPECT_FALSE(graph.completed(b));
  EXPECT_TRUE(graph.completed(c));
  EXPECT_TRUE(graph.skipped(d));
}

}  // namespace
}  // namespace shhpass
