// Tests for Hessenberg reduction, real Schur decomposition, reordering,
// and the symmetric eigensolver.
#include <gtest/gtest.h>

#include <algorithm>
#include <complex>

#include "linalg/blas.hpp"
#include "linalg/hessenberg.hpp"
#include "linalg/schur.hpp"
#include "linalg/schur_reorder.hpp"
#include "linalg/symmetric_eig.hpp"
#include "test_support.hpp"

namespace shhpass::linalg {
namespace {

using testing::expectMatrixNear;
using testing::expectOrthonormalColumns;
using testing::randomMatrix;
using testing::randomStable;
using testing::randomSymmetric;

void expectQuasiTriangular(const Matrix& t) {
  for (std::size_t i = 2; i < t.rows(); ++i)
    for (std::size_t j = 0; j + 1 < i; ++j)
      EXPECT_EQ(t(i, j), 0.0) << "entry (" << i << "," << j << ")";
  // No two consecutive nonzero subdiagonals.
  for (std::size_t i = 0; i + 2 < t.rows(); ++i)
    EXPECT_FALSE(t(i + 1, i) != 0.0 && t(i + 2, i + 1) != 0.0)
        << "consecutive subdiagonals at " << i;
}

std::vector<std::complex<double>> sorted(std::vector<std::complex<double>> v) {
  std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
    if (a.real() != b.real()) return a.real() < b.real();
    return a.imag() < b.imag();
  });
  return v;
}

void expectSameSpectrum(std::vector<std::complex<double>> a,
                        std::vector<std::complex<double>> b, double tol) {
  ASSERT_EQ(a.size(), b.size());
  a = sorted(std::move(a));
  b = sorted(std::move(b));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].real(), b[i].real(), tol) << "eig " << i;
    EXPECT_NEAR(std::abs(a[i].imag()), std::abs(b[i].imag()), tol)
        << "eig " << i;
  }
}

TEST(Hessenberg, ReducesAndReconstructs) {
  Matrix a = randomMatrix(8, 8, 101);
  HessenbergResult hr = hessenberg(a);
  expectOrthonormalColumns(hr.q);
  for (std::size_t i = 2; i < 8; ++i)
    for (std::size_t j = 0; j + 1 < i; ++j) EXPECT_EQ(hr.h(i, j), 0.0);
  expectMatrixNear(hr.q * hr.h * hr.q.transposed(), a, 1e-11);
}

TEST(Hessenberg, SmallMatricesPassThrough) {
  Matrix a = randomMatrix(2, 2, 102);
  HessenbergResult hr = hessenberg(a);
  expectMatrixNear(hr.h, a, 0.0);
  expectMatrixNear(hr.q, Matrix::identity(2), 0.0);
}

TEST(RealSchur, DiagonalizableReal) {
  // Triangular matrix with known eigenvalues, rotated by similarity.
  Matrix t{{1, 5, -3}, {0, 2, 7}, {0, 0, -4}};
  RealSchurResult rs = realSchur(t);
  expectSameSpectrum(rs.eigenvalues, {{1, 0}, {2, 0}, {-4, 0}}, 1e-10);
}

TEST(RealSchur, ComplexPair) {
  // Rotation-like block has eigenvalues 1 +/- 2i.
  Matrix a{{1, 2}, {-2, 1}};
  RealSchurResult rs = realSchur(a);
  expectSameSpectrum(rs.eigenvalues, {{1, 2}, {1, -2}}, 1e-12);
}

TEST(RealSchur, ReconstructionAndStructure) {
  Matrix a = randomMatrix(10, 10, 103);
  RealSchurResult rs = realSchur(a);
  expectOrthonormalColumns(rs.q);
  expectQuasiTriangular(rs.t);
  expectMatrixNear(rs.q * rs.t * rs.q.transposed(), a, 1e-10);
}

TEST(RealSchur, EigenvaluesMatchQuasiTriangularExtraction) {
  Matrix a = randomMatrix(9, 9, 104);
  RealSchurResult rs = realSchur(a);
  expectSameSpectrum(rs.eigenvalues, quasiTriangularEigenvalues(rs.t), 1e-8);
}

TEST(RealSchur, TraceAndDeterminantInvariants) {
  Matrix a = randomMatrix(7, 7, 105);
  RealSchurResult rs = realSchur(a);
  std::complex<double> sum{0, 0};
  for (const auto& l : rs.eigenvalues) sum += l;
  EXPECT_NEAR(sum.real(), a.trace(), 1e-9);
  EXPECT_NEAR(sum.imag(), 0.0, 1e-9);
}

TEST(RealSchur, StableMatrixHasNegativeRealParts) {
  Matrix a = randomStable(8, 106);
  for (const auto& l : eigenvalues(a)) EXPECT_LT(l.real(), 0.0);
}

// Property sweep across sizes.
class SchurSweep : public ::testing::TestWithParam<std::tuple<int, unsigned>> {
};

TEST_P(SchurSweep, FactorizationHolds) {
  const auto [n, seed] = GetParam();
  Matrix a = randomMatrix(n, n, seed);
  RealSchurResult rs = realSchur(a);
  expectOrthonormalColumns(rs.q, 1e-9);
  expectQuasiTriangular(rs.t);
  expectMatrixNear(rs.q * rs.t * rs.q.transposed(), a,
                   1e-9 * std::max(1.0, a.maxAbs()));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SchurSweep,
    ::testing::Values(std::make_tuple(1, 110), std::make_tuple(2, 111),
                      std::make_tuple(3, 112), std::make_tuple(5, 113),
                      std::make_tuple(12, 114), std::make_tuple(16, 115),
                      std::make_tuple(25, 116), std::make_tuple(40, 117)));

TEST(SchurReorder, MovesSelectedRealEigenvalueFirst) {
  Matrix a{{1, 4, 2}, {0, 5, -1}, {0, 0, -3}};
  RealSchurResult rs = realSchur(a);
  const std::size_t k = reorderSchur(
      rs.t, rs.q, [](std::complex<double> l) { return l.real() < 0; });
  EXPECT_EQ(k, 1u);
  EXPECT_NEAR(rs.t(0, 0), -3.0, 1e-10);
  expectMatrixNear(rs.q * rs.t * rs.q.transposed(), a, 1e-10);
}

TEST(SchurReorder, StableSubspaceIsInvariant) {
  Matrix a = randomMatrix(10, 10, 120);
  RealSchurResult rs = realSchur(a);
  const auto select = [](std::complex<double> l) { return l.real() < 0; };
  const std::size_t k = reorderSchur(rs.t, rs.q, select);
  // Count expected stable eigenvalues.
  std::size_t expected = 0;
  for (const auto& l : eigenvalues(a))
    if (l.real() < 0) ++expected;
  EXPECT_EQ(k, expected);
  // Leading k columns of q span an invariant subspace: A X = X T11.
  if (k > 0) {
    Matrix x = rs.q.block(0, 0, 10, k);
    Matrix t11 = rs.t.block(0, 0, k, k);
    expectMatrixNear(a * x, x * t11, 1e-8);
    // All leading eigenvalues stable, trailing antistable.
    auto eigT = quasiTriangularEigenvalues(rs.t);
    for (std::size_t i = 0; i < k; ++i) EXPECT_LT(eigT[i].real(), 0.0);
    for (std::size_t i = k; i < 10; ++i) EXPECT_GE(eigT[i].real(), 0.0);
  }
}

TEST(SchurReorder, PreservesSpectrumAndSimilarity) {
  Matrix a = randomMatrix(12, 12, 121);
  RealSchurResult rs = realSchur(a);
  auto before = sorted(rs.eigenvalues);
  reorderSchur(rs.t, rs.q,
               [](std::complex<double> l) { return std::abs(l) > 1.0; });
  expectMatrixNear(rs.q * rs.t * rs.q.transposed(), a, 1e-8);
  expectOrthonormalColumns(rs.q, 1e-9);
  expectSameSpectrum(before, quasiTriangularEigenvalues(rs.t), 1e-7);
}

TEST(SchurReorder, ComplexPairMovesAtomically) {
  // Block diag: eigenvalue 3 first, complex pair -1 +/- 2i second.
  Matrix a{{3, 1, 2}, {0, -1, 2}, {0, -2, -1}};
  RealSchurResult rs = realSchur(a);
  const std::size_t k = reorderSchur(
      rs.t, rs.q, [](std::complex<double> l) { return l.real() < 0; });
  EXPECT_EQ(k, 2u);
  // Leading 2x2 block carries the complex pair.
  auto eigT = quasiTriangularEigenvalues(rs.t);
  EXPECT_NEAR(eigT[0].real(), -1.0, 1e-9);
  EXPECT_NEAR(std::abs(eigT[0].imag()), 2.0, 1e-9);
  EXPECT_NEAR(eigT[2].real(), 3.0, 1e-9);
  expectMatrixNear(rs.q * rs.t * rs.q.transposed(), a, 1e-9);
}

TEST(SchurReorder, NoSelectionIsNoOp) {
  Matrix a = randomMatrix(6, 6, 122);
  RealSchurResult rs = realSchur(a);
  Matrix tBefore = rs.t;
  const std::size_t k =
      reorderSchur(rs.t, rs.q, [](std::complex<double>) { return false; });
  EXPECT_EQ(k, 0u);
  expectMatrixNear(rs.t, tBefore, 0.0);
}

TEST(SchurReorder, AllSelectedCountsFullDimension) {
  Matrix a = randomMatrix(6, 6, 123);
  RealSchurResult rs = realSchur(a);
  const std::size_t k =
      reorderSchur(rs.t, rs.q, [](std::complex<double>) { return true; });
  EXPECT_EQ(k, 6u);
}

TEST(SymmetricEigTest, KnownSpectrum) {
  Matrix a{{2, 1}, {1, 2}};
  SymmetricEig eig(a);
  EXPECT_NEAR(eig.eigenvalues()[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues()[1], 3.0, 1e-12);
}

TEST(SymmetricEigTest, DecompositionHolds) {
  Matrix a = randomSymmetric(9, 130);
  SymmetricEig eig(a);
  const Matrix& v = eig.eigenvectors();
  expectOrthonormalColumns(v);
  Matrix vd = v;
  for (std::size_t j = 0; j < 9; ++j)
    for (std::size_t i = 0; i < 9; ++i) vd(i, j) *= eig.eigenvalues()[j];
  expectMatrixNear(vd * v.transposed(), a, 1e-10);
}

TEST(SymmetricEigTest, EigenvaluesSortedAscending) {
  SymmetricEig eig(randomSymmetric(12, 131));
  EXPECT_TRUE(std::is_sorted(eig.eigenvalues().begin(),
                             eig.eigenvalues().end()));
}

TEST(SymmetricEigTest, ValuesOnlyModeMatches) {
  Matrix a = randomSymmetric(8, 132);
  SymmetricEig full(a, true), vals(a, false);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_NEAR(full.eigenvalues()[i], vals.eigenvalues()[i], 1e-12);
}

TEST(SymmetricEigTest, OneByOneAndEmpty) {
  SymmetricEig one(Matrix{{5.0}});
  EXPECT_DOUBLE_EQ(one.eigenvalues()[0], 5.0);
  SymmetricEig empty(Matrix{});
  EXPECT_TRUE(empty.eigenvalues().empty());
}

}  // namespace
}  // namespace shhpass::linalg
