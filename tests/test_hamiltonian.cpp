// Tests for Hamiltonian structure predicates and the stable invariant
// subspace computation (Eq. 22 of the paper).
#include <gtest/gtest.h>

#include <complex>

#include "control/hamiltonian.hpp"
#include "linalg/blas.hpp"
#include "linalg/schur.hpp"
#include "test_support.hpp"

namespace shhpass::control {
namespace {

using linalg::Matrix;
using testing::expectMatrixNear;
using testing::randomMatrix;
using testing::randomStable;
using testing::randomSymmetric;

Matrix randomHamiltonian(std::size_t n, unsigned seed) {
  return makeHamiltonian(randomMatrix(n, n, seed),
                         randomSymmetric(n, seed + 1),
                         randomSymmetric(n, seed + 2));
}

TEST(HamiltonianStructure, MakeAndDetect) {
  Matrix h = randomHamiltonian(4, 301);
  EXPECT_TRUE(isHamiltonian(h));
  EXPECT_FALSE(isSkewHamiltonian(h));
  // Perturbing one off-diagonal entry of the R block breaks the structure.
  h(0, 5) += 1.0;
  EXPECT_FALSE(isHamiltonian(h));
}

TEST(HamiltonianStructure, SkewHamiltonianDetect) {
  // W = [A R; Q A^T] with R, Q skew-symmetric.
  const std::size_t n = 3;
  Matrix a = randomMatrix(n, n, 302);
  Matrix r = randomMatrix(n, n, 303);
  Matrix rSkew = r - r.transposed();
  Matrix q = randomMatrix(n, n, 304);
  Matrix qSkew = q - q.transposed();
  Matrix w(2 * n, 2 * n);
  w.setBlock(0, 0, a);
  w.setBlock(0, n, rSkew);
  w.setBlock(n, 0, qSkew);
  w.setBlock(n, n, a.transposed());
  EXPECT_TRUE(isSkewHamiltonian(w));
  EXPECT_FALSE(isHamiltonian(w));
}

TEST(HamiltonianStructure, OddSizeRejected) {
  EXPECT_FALSE(isHamiltonian(Matrix::identity(3)));
  EXPECT_FALSE(isSkewHamiltonian(Matrix::identity(3)));
  // Identity of even size IS skew-Hamiltonian (J I = J skew) but not
  // Hamiltonian.
  EXPECT_TRUE(isSkewHamiltonian(Matrix::identity(4)));
  EXPECT_FALSE(isHamiltonian(Matrix::identity(4)));
}

TEST(HamiltonianSpectrum, QuadrupletSymmetry) {
  Matrix h = randomHamiltonian(5, 305);
  auto eig = linalg::eigenvalues(h);
  // For every eigenvalue lambda, -lambda is also an eigenvalue.
  for (const auto& l : eig) {
    bool foundMirror = false;
    for (const auto& m : eig)
      if (std::abs(m.real() + l.real()) < 1e-7 &&
          std::abs(std::abs(m.imag()) - std::abs(l.imag())) < 1e-7) {
        foundMirror = true;
        break;
      }
    EXPECT_TRUE(foundMirror) << "no mirror for " << l.real();
  }
}

TEST(StableSubspaceTest, RiccatiStyleHamiltonian) {
  // H = [A -BB^T; -C^TC -A^T] with A stable has a clean spectral split.
  const std::size_t n = 4;
  Matrix a = randomStable(n, 306);
  Matrix b = randomMatrix(n, 2, 307);
  Matrix c = randomMatrix(2, n, 308);
  Matrix h = makeHamiltonian(a, -1.0 * linalg::abt(b, b),
                             -1.0 * linalg::atb(c, c));
  StableSubspace ss = stableInvariantSubspace(h);
  ASSERT_TRUE(ss.ok);
  EXPECT_EQ(ss.x1.rows(), n);
  // Invariance: H [X1; X2] = [X1; X2] Lambda.
  Matrix x = linalg::vcat(ss.x1, ss.x2);
  expectMatrixNear(h * x, x * ss.lambda, 1e-8);
  // Lambda stable.
  for (const auto& l : linalg::quasiTriangularEigenvalues(ss.lambda))
    EXPECT_LT(l.real(), 0.0);
}

TEST(StableSubspaceTest, SymplecticPropertyX1tX2Symmetric) {
  // The paper notes X1^T X2 = X2^T X1 for the stable subspace basis.
  const std::size_t n = 5;
  Matrix a = randomStable(n, 309);
  Matrix b = randomMatrix(n, 2, 310);
  Matrix c = randomMatrix(2, n, 311);
  Matrix h = makeHamiltonian(a, -1.0 * linalg::abt(b, b),
                             -1.0 * linalg::atb(c, c));
  StableSubspace ss = stableInvariantSubspace(h);
  ASSERT_TRUE(ss.ok);
  Matrix x1tx2 = linalg::atb(ss.x1, ss.x2);
  EXPECT_TRUE(x1tx2.isSymmetric(1e-8 * std::max(1.0, x1tx2.maxAbs())));
}

TEST(StableSubspaceTest, FailsOnImaginaryAxisEigenvalues) {
  // H = [0 1; -1 0] (J itself) has eigenvalues +/- i.
  Matrix h = Matrix::symplecticJ(1);
  StableSubspace ss = stableInvariantSubspace(h);
  EXPECT_FALSE(ss.ok);
}

TEST(ImaginaryAxisDetection, DetectsAndClears) {
  Matrix h = Matrix::symplecticJ(2);  // eigenvalues +/- i (twice)
  EXPECT_TRUE(hasImaginaryAxisEigenvalue(h));
  Matrix stable = randomStable(4, 312);
  EXPECT_FALSE(hasImaginaryAxisEigenvalue(stable, 1e-10));
}

}  // namespace
}  // namespace shhpass::control
