// Tests for netlist construction, MNA stamping, and the model generators.
#include <gtest/gtest.h>

#include <cmath>

#include "circuits/generators.hpp"
#include "circuits/mna.hpp"
#include "ds/descriptor.hpp"
#include "linalg/cholesky.hpp"
#include "test_support.hpp"

namespace shhpass::circuits {
namespace {

using ds::DescriptorSystem;
using linalg::Matrix;

TEST(NetlistTest, BuildsAndValidates) {
  Netlist net(3);
  net.addResistor(1, 2, 10.0).addCapacitor(2, 0, 1e-6).addInductor(2, 3, 1e-3);
  net.addPort(1);
  EXPECT_EQ(net.components().size(), 3u);
  EXPECT_EQ(net.numInductors(), 1u);
  EXPECT_EQ(net.ports().size(), 1u);
}

TEST(NetlistTest, RejectsBadElements) {
  Netlist net(2);
  EXPECT_THROW(net.addResistor(1, 1, 5.0), std::invalid_argument);
  EXPECT_THROW(net.addResistor(1, 5, 5.0), std::invalid_argument);
  EXPECT_THROW(net.addCapacitor(1, 2, 0.0), std::invalid_argument);
  EXPECT_THROW(net.addPort(0), std::invalid_argument);
  EXPECT_THROW(Netlist(-1), std::invalid_argument);
}

TEST(MnaTest, RequiresPort) {
  Netlist net(1);
  net.addResistor(1, 0, 1.0);
  EXPECT_THROW(stampMna(net), std::invalid_argument);
}

TEST(MnaTest, ResistorDividerImpedance) {
  // Port at node 1, R1 = 2 to ground: Z = 2 (static).
  Netlist net(1);
  net.addResistor(1, 0, 2.0);
  net.addPort(1);
  DescriptorSystem sys = stampMna(net);
  ds::TransferValue g = ds::evalTransfer(sys, 0.0, 0.0);
  EXPECT_NEAR(g.re(0, 0), 2.0, 1e-12);
}

TEST(MnaTest, RcImpedanceAtDcAndHighFrequency) {
  // R parallel C: Z(0) = R, Z(j inf) -> 0.
  Netlist net(1);
  net.addResistor(1, 0, 3.0);
  net.addCapacitor(1, 0, 1.0);
  net.addPort(1);
  DescriptorSystem sys = stampMna(net);
  EXPECT_NEAR(ds::evalTransfer(sys, 0.0, 0.0).re(0, 0), 3.0, 1e-12);
  EXPECT_NEAR(ds::evalTransfer(sys, 0.0, 1e6).re(0, 0), 0.0, 1e-5);
}

TEST(MnaTest, SeriesRlImpedance) {
  // R in series with L to ground: Z(jw) = R + jwL.
  Netlist net(2);
  net.addResistor(1, 2, 5.0);
  net.addInductor(2, 0, 2.0);
  net.addPort(1);
  DescriptorSystem sys = stampMna(net);
  ds::TransferValue g = ds::evalTransfer(sys, 0.0, 3.0);
  EXPECT_NEAR(g.re(0, 0), 5.0, 1e-10);
  EXPECT_NEAR(g.im(0, 0), 6.0, 1e-10);
}

TEST(MnaTest, StructuralProperties) {
  LadderOptions opt;
  opt.sections = 4;
  DescriptorSystem sys = makeRlcLadder(opt);
  // Impedance-form MNA: E symmetric PSD, C = B^T, D = 0, A + A^T <= 0.
  EXPECT_TRUE(sys.e.isSymmetric(0.0));
  EXPECT_TRUE(linalg::isPositiveSemidefinite(sys.e));
  testing::expectMatrixNear(sys.c, sys.b.transposed(), 0.0);
  EXPECT_EQ(sys.d.maxAbs(), 0.0);
  Matrix sym = sys.a + sys.a.transposed();
  EXPECT_TRUE(linalg::isPositiveSemidefinite(-1.0 * sym));
}

TEST(MnaTest, PassivityOnImaginaryAxisSamples) {
  LadderOptions opt;
  opt.sections = 3;
  opt.capAtPort = true;
  DescriptorSystem sys = makeRlcLadder(opt);
  for (double w : {0.0, 1.0, 100.0, 1e4, 1e6})
    EXPECT_GE(ds::popovMinEigenvalueDs(sys, w), -1e-10) << "w=" << w;
}

TEST(Generators, LadderOrderBookkeeping) {
  LadderOptions opt;
  opt.sections = 5;
  DescriptorSystem sys = makeRlcLadder(opt);
  // 2S+1 nodes + S inductors.
  EXPECT_EQ(sys.order(), 2 * 5 + 1 + 5u);
  EXPECT_TRUE(ds::isRegular(sys));
  EXPECT_TRUE(ds::hasStableFiniteModes(sys));
}

TEST(Generators, BenchmarkModelHitsExactOrder) {
  for (std::size_t order : {20u, 33u, 40u, 57u, 100u}) {
    for (bool impulsive : {false, true}) {
      DescriptorSystem sys = makeBenchmarkModel(order, impulsive);
      EXPECT_EQ(sys.order(), order) << "impulsive=" << impulsive;
      EXPECT_TRUE(ds::isRegular(sys));
    }
  }
  EXPECT_THROW(makeBenchmarkModel(3, false), std::invalid_argument);
}

TEST(Generators, TwoPortLadderIsSquareTwoByTwo) {
  LadderOptions opt;
  opt.sections = 3;
  opt.twoPort = true;
  DescriptorSystem sys = makeRlcLadder(opt);
  EXPECT_EQ(sys.numInputs(), 2u);
  EXPECT_EQ(sys.numOutputs(), 2u);
}

TEST(Generators, ModelGeneratorsAreBitDeterministic) {
  // Golden verdicts and BENCH trajectory rows are only comparable across
  // runs and platforms if the generators are pure functions of their
  // arguments. makeBenchmarkModel is parameter-driven (no RNG at all) and
  // makeRandomRlcNetwork derives everything from its explicit seed, so two
  // invocations must agree BIT-FOR-BIT — not merely approximately.
  auto expectIdentical = [](const DescriptorSystem& a,
                            const DescriptorSystem& b) {
    EXPECT_TRUE(a.e.approxEqual(b.e, 0.0));
    EXPECT_TRUE(a.a.approxEqual(b.a, 0.0));
    EXPECT_TRUE(a.b.approxEqual(b.b, 0.0));
    EXPECT_TRUE(a.c.approxEqual(b.c, 0.0));
    EXPECT_TRUE(a.d.approxEqual(b.d, 0.0));
  };
  for (bool impulsive : {false, true})
    expectIdentical(makeBenchmarkModel(25, impulsive),
                    makeBenchmarkModel(25, impulsive));
  for (unsigned seed : {7u, 42u})
    expectIdentical(makeRandomRlcNetwork(9, seed, true),
                    makeRandomRlcNetwork(9, seed, true));
  // Distinct seeds must actually differ (the seed is not ignored).
  EXPECT_FALSE(makeRandomRlcNetwork(9, 7u).a.approxEqual(
      makeRandomRlcNetwork(9, 8u).a, 0.0));
}

TEST(Generators, RandomNetworkRegularAndStable) {
  for (unsigned seed : {1u, 2u, 3u}) {
    DescriptorSystem sys = makeRandomRlcNetwork(8, seed);
    EXPECT_TRUE(ds::isRegular(sys)) << "seed=" << seed;
    EXPECT_TRUE(ds::hasStableFiniteModes(sys)) << "seed=" << seed;
    // Physical network: passive on axis samples.
    for (double w : {0.1, 10.0, 1e3})
      EXPECT_GE(ds::popovMinEigenvalueDs(sys, w), -1e-9)
          << "seed=" << seed << " w=" << w;
  }
}

TEST(Generators, NegativeResistorBreaksPassivitySamples) {
  DescriptorSystem sys = makeNonPassiveNegativeResistor(4);
  double worst = 0.0;
  for (double w = 1e-2; w < 1e8; w *= 3.0)
    worst = std::min(worst, ds::popovMinEigenvalueDs(sys, w));
  EXPECT_LT(worst, 0.0);
}

TEST(Generators, IndefiniteM1MutantShape) {
  DescriptorSystem sys = makeNonPassiveIndefiniteM1();
  EXPECT_EQ(sys.order(), 6u);
  EXPECT_TRUE(ds::isRegular(sys));
  // G(jw) ~ jw diag(1,-1) at high frequency: the (2,2) element has large
  // negative imaginary part... but passivity violation shows in Re only
  // through the proper part; M1 indefiniteness is a pole-at-infinity
  // property detected by the structured tests, not by Re G samples.
  // Im G(jw) = w (impulsive part) - w/(1+w^2) (proper RC part).
  const double w = 100.0;
  const double proper = w / (1.0 + w * w);
  ds::TransferValue g = ds::evalTransfer(sys, 0.0, w);
  EXPECT_NEAR(g.im(0, 0), w - proper, 1e-8);
  EXPECT_NEAR(g.im(1, 1), -w - proper, 1e-8);
}

TEST(Generators, HigherOrderImpulseMutantTransfer) {
  DescriptorSystem sys = makeNonPassiveHigherOrderImpulse();
  // G(s) = 1 + 1/(s+1) + s^2; at s = j: G = 1 + (1-j)/2 - 1 = 0.5 - 0.5j.
  ds::TransferValue g = ds::evalTransfer(sys, 0.0, 1.0);
  EXPECT_NEAR(g.re(0, 0), 0.5, 1e-10);
  EXPECT_NEAR(g.im(0, 0), -0.5, 1e-10);
}

}  // namespace
}  // namespace shhpass::circuits
