// Tests for generalized eigenvalues of matrix pencils (E, A), including
// singular-E pencils as produced by descriptor systems.
#include <gtest/gtest.h>

#include <algorithm>

#include "linalg/qz.hpp"
#include "test_support.hpp"

namespace shhpass::linalg {
namespace {

using testing::randomMatrix;

TEST(GeneralizedEig, IdentityEReducesToStandard) {
  Matrix a{{1, 0}, {0, -2}};
  GeneralizedEigenvalues ge = generalizedEigenvalues(Matrix::identity(2), a);
  EXPECT_EQ(ge.infiniteCount, 0u);
  ASSERT_EQ(ge.finite.size(), 2u);
  std::vector<double> re{ge.finite[0].real(), ge.finite[1].real()};
  std::sort(re.begin(), re.end());
  EXPECT_NEAR(re[0], -2.0, 1e-9);
  EXPECT_NEAR(re[1], 1.0, 1e-9);
}

TEST(GeneralizedEig, SingularEGivesInfiniteEigenvalues) {
  // E = diag(1, 0), A = diag(-3, 1): one finite eigenvalue -3, one infinite.
  Matrix e = Matrix::diag({1.0, 0.0});
  Matrix a = Matrix::diag({-3.0, 1.0});
  GeneralizedEigenvalues ge = generalizedEigenvalues(e, a);
  EXPECT_EQ(ge.infiniteCount, 1u);
  ASSERT_EQ(ge.finite.size(), 1u);
  EXPECT_NEAR(ge.finite[0].real(), -3.0, 1e-9);
}

TEST(GeneralizedEig, NilpotentBlockAllInfinite) {
  // E nilpotent (single Jordan block at infinity), A = I: index-2 pencil.
  Matrix e{{0, 1}, {0, 0}};
  Matrix a = Matrix::identity(2);
  GeneralizedEigenvalues ge = generalizedEigenvalues(e, a);
  EXPECT_EQ(ge.infiniteCount, 2u);
  EXPECT_TRUE(ge.finite.empty());
}

TEST(GeneralizedEig, ScalingInvariance) {
  Matrix e = Matrix::identity(3);
  Matrix a{{-1, 1, 0}, {0, -2, 1}, {0, 0, -5}};
  // lambda(2E, A) = lambda(E, A)/2.
  GeneralizedEigenvalues ge = generalizedEigenvalues(2.0 * e, a);
  std::vector<double> re;
  for (auto& l : ge.finite) re.push_back(l.real());
  std::sort(re.begin(), re.end());
  EXPECT_NEAR(re[0], -2.5, 1e-9);
  EXPECT_NEAR(re[1], -1.0, 1e-9);
  EXPECT_NEAR(re[2], -0.5, 1e-9);
}

TEST(GeneralizedEig, ComplexPairSurvives) {
  Matrix e = Matrix::identity(2);
  Matrix a{{0, 4}, {-4, 0}};  // eigenvalues +/- 4i
  GeneralizedEigenvalues ge = generalizedEigenvalues(e, a);
  ASSERT_EQ(ge.finite.size(), 2u);
  EXPECT_NEAR(std::abs(ge.finite[0].imag()), 4.0, 1e-8);
  EXPECT_NEAR(ge.finite[0].real(), 0.0, 1e-8);
}

TEST(GeneralizedEig, MixedFiniteInfinite) {
  // Block pencil: finite part diag(-1,-2), infinite part E22 = [0 1; 0 0].
  Matrix e = Matrix::zeros(4, 4);
  e(0, 0) = 1.0;
  e(1, 1) = 1.0;
  e(2, 3) = 1.0;
  Matrix a = Matrix::identity(4);
  a(0, 0) = -1.0;
  a(1, 1) = -2.0;
  GeneralizedEigenvalues ge = generalizedEigenvalues(e, a);
  EXPECT_EQ(ge.infiniteCount, 2u);
  ASSERT_EQ(ge.finite.size(), 2u);
  std::vector<double> re{ge.finite[0].real(), ge.finite[1].real()};
  std::sort(re.begin(), re.end());
  EXPECT_NEAR(re[0], -2.0, 1e-8);
  EXPECT_NEAR(re[1], -1.0, 1e-8);
}

TEST(GeneralizedEig, SingularPencilThrows) {
  // E = A = 0 is a singular pencil: det(A - sE) == 0 identically.
  Matrix z = Matrix::zeros(2, 2);
  EXPECT_THROW(generalizedEigenvalues(z, z), std::runtime_error);
  EXPECT_FALSE(isRegularPencil(z, z));
}

TEST(GeneralizedEig, RegularityDetection) {
  Matrix e = Matrix::diag({1.0, 0.0});
  Matrix a = Matrix::identity(2);
  EXPECT_TRUE(isRegularPencil(e, a));
  // Shared kernel direction makes the pencil singular.
  Matrix a2 = Matrix::diag({1.0, 0.0});
  EXPECT_FALSE(isRegularPencil(e, a2));
}

TEST(GeneralizedEig, FiniteModeCountMatchesDegree) {
  // deg det(-sE + A) with E = diag(1,1,0), A generic invertible: 2.
  Matrix e = Matrix::diag({1.0, 1.0, 0.0});
  Matrix a = randomMatrix(3, 3, 140);
  for (std::size_t i = 0; i < 3; ++i) a(i, i) += 3.0;
  EXPECT_EQ(finiteModeCount(e, a), 2u);
}

TEST(GeneralizedEig, EmptyPencil) {
  GeneralizedEigenvalues ge = generalizedEigenvalues(Matrix{}, Matrix{});
  EXPECT_TRUE(ge.finite.empty());
  EXPECT_EQ(ge.infiniteCount, 0u);
}

}  // namespace
}  // namespace shhpass::linalg
