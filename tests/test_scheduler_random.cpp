// Determinism-first harness for the two-level batch scheduler
// (api/scheduler.hpp + AnalyzerOptions::stageGraph). The library-wide
// contract under test: scheduling NEVER changes decisions. A seeded
// mixed-order batch (passive, non-passive, and error-returning models
// interleaved) must produce bitwise decision-equal reports for every
// worker count, under 4x oversubscription, under forced steal-heavy
// skew, and through the level-1 stage graph — with report ordering
// pinned to request order regardless of steal order. The suite also pins
// the deterministic structure of the shard plan (large-order items get
// singleton shards with kernel budgets, small items share budget-1
// shards) and the SchedulerReport counter semantics.
//
// Like test_thread_pool_stress.cpp, every test doubles as a TSan target
// (the `tsan` CI job runs this suite with SHHPASS_GEMM_THREADS=3 and
// SHHPASS_STAGE_GRAPH=1, so kernel pool x batch crew x stage graph all
// engage at once).
#include <gtest/gtest.h>

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <iterator>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/analyzer.hpp"
#include "api/scheduler.hpp"
#include "circuits/generators.hpp"
#include "linalg/blas.hpp"

namespace shhpass {
namespace {

using api::AnalysisReport;
using api::AnalysisRequest;
using api::AnalyzerOptions;
using api::PassivityAnalyzer;
using api::Result;
using api::SchedulerOptions;
using api::Shard;

/// A descriptor system whose validate() throws (inconsistent block
/// dimensions), so analysis returns an operational-error Result — the
/// scheduler must carry errors through without disturbing neighbors.
ds::DescriptorSystem malformedSystem() {
  ds::DescriptorSystem sys;
  sys.e = linalg::Matrix::identity(3);
  sys.a = linalg::Matrix::identity(2);  // mismatched with e
  sys.b = linalg::Matrix(2, 1);
  sys.c = linalg::Matrix(1, 2);
  sys.d = linalg::Matrix(1, 1);
  return sys;
}

/// The seeded mixed batch: orders 40-300, passive benchmark models,
/// random RLC networks, every non-passive mutant family, and malformed
/// (error-returning) items interleaved at fixed positions.
std::vector<AnalysisRequest> mixedBatch() {
  std::vector<AnalysisRequest> batch;
  auto add = [&batch](std::string id, ds::DescriptorSystem sys) {
    AnalysisRequest r;
    r.id = std::move(id);
    r.system = std::move(sys);
    batch.push_back(std::move(r));
  };
  add("bench-40", circuits::makeBenchmarkModel(40, true));
  add("bench-56", circuits::makeBenchmarkModel(56, false));
  add("bad-early", malformedSystem());
  add("rlc-a", circuits::makeRandomRlcNetwork(24, 7u, true));
  add("neg-feedthrough", circuits::makeNonPassiveNegativeFeedthrough(5));
  add("bench-224", circuits::makeBenchmarkModel(224, true));
  add("indefinite-m1", circuits::makeNonPassiveIndefiniteM1());
  add("bench-96", circuits::makeBenchmarkModel(96, false));
  add("higher-order", circuits::makeNonPassiveHigherOrderImpulse());
  add("bad-late", malformedSystem());
  add("bench-300", circuits::makeBenchmarkModel(300, false));
  add("neg-resistor", circuits::makeNonPassiveNegativeResistor(6));
  add("bench-120", circuits::makeBenchmarkModel(120, true));
  add("rlc-b", circuits::makeRandomRlcNetwork(30, 11u, false));
  return batch;
}

/// The shared batch and its single-shot reference reports (the oracle
/// every batch configuration is compared against), computed once per
/// process — several tests reuse them, and the order-300 item makes
/// recomputation the dominant cost of this suite.
const std::vector<AnalysisRequest>& sharedBatch() {
  static const std::vector<AnalysisRequest> kBatch = mixedBatch();
  return kBatch;
}

const std::vector<Result<AnalysisReport>>& sequentialOracle() {
  static const std::vector<Result<AnalysisReport>> kOracle = [] {
    const PassivityAnalyzer analyzer;
    std::vector<Result<AnalysisReport>> out;
    out.reserve(sharedBatch().size());
    for (const AnalysisRequest& r : sharedBatch())
      out.push_back(analyzer.analyze(r));
    return out;
  }();
  return kOracle;
}

/// Bitwise decision parity between a batch result vector and the oracle:
/// same ok-ness per slot, same error codes for failures, decisionEquals
/// for successes. Report ordering is BY SLOT, so this also pins that
/// results land in request order whatever the steal schedule did.
void expectParity(const std::vector<Result<AnalysisReport>>& got,
                  const std::vector<Result<AnalysisReport>>& oracle,
                  const std::string& label) {
  ASSERT_EQ(got.size(), oracle.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].ok(), oracle[i].ok()) << label << " item " << i;
    if (!got[i].ok()) {
      EXPECT_EQ(got[i].status().code(), oracle[i].status().code())
          << label << " item " << i;
      continue;
    }
    EXPECT_TRUE(got[i]->decisionEquals(*oracle[i]))
        << label << " item " << i << " (" << got[i]->id << ")";
  }
}

// ------------------------------------------------------------- shard plan

TEST(SchedulerPlan, DeterministicStructureAndBudgets) {
  SchedulerOptions opts;  // defaults: smallShardSize 4, floor 192
  const std::vector<std::size_t> orders = {40, 56, 3,  24, 12, 224, 2,
                                           96, 30, 2,  300, 8,  120, 30};
  const std::vector<Shard> plan = planShards(orders, opts);
  ASSERT_FALSE(plan.empty());

  std::vector<char> seen(orders.size(), 0);
  for (const Shard& shard : plan) {
    ASSERT_FALSE(shard.items.empty());
    for (std::size_t k = 0; k < shard.items.size(); ++k) {
      const std::size_t item = shard.items[k];
      ASSERT_LT(item, orders.size());
      EXPECT_FALSE(seen[item]) << "item " << item << " planned twice";
      seen[item] = 1;
      if (k > 0) EXPECT_LT(shard.items[k - 1], item);  // ascending
    }
    if (shard.large) {
      // Large-order items: singleton shard, kernel threads granted
      // (budget 0 = configured width applies uncapped).
      EXPECT_EQ(shard.items.size(), 1u);
      EXPECT_GE(orders[shard.items[0]], opts.largeOrderFloor);
      EXPECT_EQ(shard.gemmBudget, opts.gemmBudget);
    } else {
      // Small items: grouped, gemm pinned inline (budget 1) so the
      // kernel pool stays free for the large shards.
      EXPECT_LE(shard.items.size(), opts.smallShardSize);
      EXPECT_EQ(shard.gemmBudget, 1u);
      for (std::size_t item : shard.items)
        EXPECT_LT(orders[item], opts.largeOrderFloor);
    }
  }
  for (std::size_t i = 0; i < orders.size(); ++i)
    EXPECT_TRUE(seen[i]) << "item " << i << " missing from plan";

  // Pure function: replanning yields the identical plan.
  const std::vector<Shard> again = planShards(orders, opts);
  ASSERT_EQ(again.size(), plan.size());
  for (std::size_t s = 0; s < plan.size(); ++s) {
    EXPECT_EQ(again[s].items, plan[s].items);
    EXPECT_EQ(again[s].large, plan[s].large);
    EXPECT_EQ(again[s].gemmBudget, plan[s].gemmBudget);
  }
}

// ------------------------------------------------- work-stealing executor

TEST(SchedulerExecutor, GuaranteedStealUnderForcedSkew) {
  // Two shards, both homed on worker 0 (packFirstWorker), two workers.
  // Shard 0 blocks until shard 1 has run — which can ONLY happen if
  // worker 1 steals shard 1 from worker 0's queue. A broken stealer
  // deadlocks here (ctest timeout), a working one records >= 1 steal.
  std::vector<Shard> plan(2);
  plan[0].items = {0};
  plan[1].items = {1};
  std::mutex mu;
  std::condition_variable cv;
  bool shard1Ran = false;
  std::vector<char> stolenFlag(2, 0);
  const std::size_t steals = api::runSharded(
      plan, /*workers=*/2,
      [&](std::size_t item, std::size_t, bool stolen) {
        if (item == 0) {
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&] { return shard1Ran; });
        } else {
          {
            std::lock_guard<std::mutex> lock(mu);
            shard1Ran = true;
          }
          cv.notify_all();
        }
        stolenFlag[item] = stolen ? 1 : 0;
      },
      /*packFirstWorker=*/true);
  EXPECT_GE(steals, 1u);
  EXPECT_TRUE(stolenFlag[1]);   // shard 1 had to be stolen
  EXPECT_FALSE(stolenFlag[0]);  // shard 0 ran on its home worker
}

TEST(SchedulerExecutor, SingleWorkerRunsPlanOrderWithNoSteals) {
  SchedulerOptions opts;
  const std::vector<std::size_t> orders = {10, 20, 200, 30, 40, 50};
  const std::vector<Shard> plan = planShards(orders, opts);
  std::vector<std::size_t> executionOrder;
  const std::size_t steals = api::runSharded(
      plan, /*workers=*/1,
      [&](std::size_t item, std::size_t, bool stolen) {
        EXPECT_FALSE(stolen);
        executionOrder.push_back(item);
      });
  EXPECT_EQ(steals, 0u);
  // One worker drains its own queue front-to-back: plan order exactly.
  std::vector<std::size_t> planOrder;
  for (const Shard& shard : plan)
    for (std::size_t item : shard.items) planOrder.push_back(item);
  EXPECT_EQ(executionOrder, planOrder);
}

// ------------------------------------------------------------ batch parity

TEST(SchedulerRandom, ParityAcrossWorkerCountsAndOversubscription) {
  const std::vector<AnalysisRequest>& batch = sharedBatch();
  const std::vector<Result<AnalysisReport>>& oracle = sequentialOracle();

  std::vector<std::size_t> workerCounts = {1, 2, 3, 7};
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workerCounts.push_back(4 * hw);  // 4x oversubscription

  for (std::size_t workers : workerCounts) {
    AnalyzerOptions opts;
    opts.threads = workers;
    const PassivityAnalyzer analyzer(opts);
    const std::vector<Result<AnalysisReport>> results =
        analyzer.runBatch(batch);
    expectParity(results, oracle,
                 "workers=" + std::to_string(workers));
  }
}

TEST(SchedulerRandom, ParityUnderStealHeavySkew) {
  // Every shard homed on worker 0: workers 1..W-1 must steal all their
  // work, maximizing out-of-plan-order execution. Slot-addressed results
  // keep the output ordering (and every decision) identical anyway.
  const std::vector<AnalysisRequest>& batch = sharedBatch();
  const std::vector<Result<AnalysisReport>>& oracle = sequentialOracle();

  AnalyzerOptions opts;
  opts.threads = 3;
  opts.scheduler.packFirstWorker = true;
  const PassivityAnalyzer analyzer(opts);
  const std::vector<Result<AnalysisReport>> results = analyzer.runBatch(batch);
  expectParity(results, oracle, "steal-heavy");
  for (std::size_t i = 0; i < results.size(); ++i)
    if (results[i].ok())
      EXPECT_EQ(results[i]->id, batch[i].id) << "slot " << i;
}

TEST(SchedulerRandom, ParityWithStageGraphOnBothLevels) {
  // Level 1 x level 2 together: stage graphs inside analyses scheduled
  // by the stealing crew across analyses.
  const std::vector<AnalysisRequest>& batch = sharedBatch();
  const std::vector<Result<AnalysisReport>>& oracle = sequentialOracle();

  AnalyzerOptions opts;
  opts.threads = 3;
  opts.stageGraph = true;
  opts.stageGraphThreads = 2;
  const PassivityAnalyzer analyzer(opts);
  const std::vector<Result<AnalysisReport>> results = analyzer.runBatch(batch);
  expectParity(results, oracle, "two-level");
  for (const Result<AnalysisReport>& r : results)
    if (r.ok()) EXPECT_TRUE(r->scheduler.stageGraph);
}

// ------------------------------------------------------- report semantics

TEST(SchedulerRandom, SchedulerReportCounterSemantics) {
  const std::vector<AnalysisRequest>& batch = sharedBatch();
  AnalyzerOptions opts;
  opts.threads = 2;
  const PassivityAnalyzer analyzer(opts);
  const std::vector<Result<AnalysisReport>> results = analyzer.runBatch(batch);
  ASSERT_EQ(results.size(), batch.size());

  const SchedulerOptions& sopts = opts.scheduler;
  const std::vector<Shard> expectedPlan = [&batch, &sopts] {
    std::vector<std::size_t> orders(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i)
      orders[i] = batch[i].system.order();
    return planShards(orders, sopts);
  }();

  std::size_t firstSteals = 0;
  bool sawOk = false;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) continue;  // error slots carry no report
    const AnalysisReport& r = *results[i];
    EXPECT_TRUE(r.scheduler.scheduled) << i;
    EXPECT_EQ(r.scheduler.batchWorkers, 2u) << i;
    EXPECT_EQ(r.scheduler.batchShards, expectedPlan.size()) << i;
    ASSERT_LT(r.scheduler.shard, expectedPlan.size()) << i;
    const Shard& shard = expectedPlan[r.scheduler.shard];
    EXPECT_EQ(r.scheduler.shardItems, shard.items.size()) << i;
    EXPECT_EQ(r.scheduler.large, shard.large) << i;
    EXPECT_EQ(r.scheduler.large,
              batch[i].system.order() >= sopts.largeOrderFloor)
        << i;
    if (!shard.large) {
      // Small shards run gemm inline by construction.
      EXPECT_EQ(r.scheduler.gemmThreadsGranted, 1u) << i;
    } else {
      EXPECT_GE(r.scheduler.gemmThreadsGranted, 1u) << i;
    }
    // batchSteals is an execution record but must be stamped uniformly.
    if (!sawOk) {
      firstSteals = r.scheduler.batchSteals;
      sawOk = true;
    } else {
      EXPECT_EQ(r.scheduler.batchSteals, firstSteals) << i;
    }
    // A stolen item implies the batch recorded at least one steal.
    if (r.scheduler.stolen) EXPECT_GE(r.scheduler.batchSteals, 1u) << i;
  }
  EXPECT_TRUE(sawOk);
}

TEST(SchedulerRandom, TraceOwnershipPinsCanonicalStageOrderPerItem) {
  // Regression (PR 8): concurrent runBatch must never interleave or
  // reorder StageTraces across items — each report owns its traces, and
  // their order is the canonical Fig.-1 stage order, identical to the
  // single-shot run of the same request.
  const std::vector<AnalysisRequest>& batch = sharedBatch();
  const std::vector<Result<AnalysisReport>>& oracle = sequentialOracle();

  AnalyzerOptions opts;
  opts.threads = 7;
  const PassivityAnalyzer analyzer(opts);
  const std::vector<Result<AnalysisReport>> results = analyzer.runBatch(batch);

  const char* const kCanonical[] = {
      "prerequisites",  "build-phi",   "impulse-deflation",
      "nondynamic-removal", "m1-extraction", "proper-part", "pr-test"};
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) continue;
    const AnalysisReport& r = *results[i];
    ASSERT_LE(r.stages.size(), std::size(kCanonical)) << i;
    for (std::size_t k = 0; k < r.stages.size(); ++k)
      EXPECT_EQ(r.stages[k].name, kCanonical[k]) << i << " stage " << k;
    ASSERT_TRUE(oracle[i].ok()) << i;
    ASSERT_EQ(r.stages.size(), oracle[i]->stages.size()) << i;
    for (std::size_t k = 0; k < r.stages.size(); ++k) {
      EXPECT_EQ(r.stages[k].status.code(),
                oracle[i]->stages[k].status.code())
          << i << " stage " << k;
    }
  }
}

}  // namespace
}  // namespace shhpass
