// Stage-by-stage tests of the proposed pipeline: deflation (Eqs. 11-17),
// nondynamic removal (Eqs. 18-20), proper-part extraction (Eqs. 21-23),
// and M1 extraction (Eqs. 24-25). Each stage is checked for structure
// preservation AND transfer-function preservation.
#include <gtest/gtest.h>

#include <cmath>

#include "circuits/generators.hpp"
#include "core/impulse_deflation.hpp"
#include "core/markov.hpp"
#include "core/nondynamic.hpp"
#include "core/phi_builder.hpp"
#include "core/proper_part.hpp"
#include "control/hamiltonian.hpp"
#include "linalg/blas.hpp"
#include "linalg/schur.hpp"
#include "linalg/svd.hpp"
#include "shh/symplectic.hpp"
#include "test_support.hpp"

namespace shhpass::core {
namespace {

using linalg::Matrix;
using testing::expectMatrixNear;

// Compare Phi(jw) of two descriptor realizations.
void expectSameTransferAt(const ds::DescriptorSystem& a,
                          const ds::DescriptorSystem& b, double w,
                          double tol) {
  ds::TransferValue ga = ds::evalTransfer(a, 0.0, w);
  ds::TransferValue gb = ds::evalTransfer(b, 0.0, w);
  expectMatrixNear(ga.re, gb.re, tol);
  expectMatrixNear(ga.im, gb.im, tol);
}

ds::DescriptorSystem impulsiveLadder(std::size_t sections) {
  circuits::LadderOptions opt;
  opt.sections = sections;
  opt.capAtPort = false;  // port inductor => impulsive modes, M1 = l
  return circuits::makeRlcLadder(opt);
}

ds::DescriptorSystem impulseFreeLadder(std::size_t sections) {
  circuits::LadderOptions opt;
  opt.sections = sections;
  opt.capAtPort = true;
  return circuits::makeRlcLadder(opt);
}

TEST(Stage1Deflation, ImpulseFreeSystemRemovesNothing) {
  shh::ShhRealization phi = buildPhi(impulseFreeLadder(3));
  ImpulseDeflationResult r = deflateImpulseModes(phi);
  EXPECT_EQ(r.removed, 0u);
  EXPECT_TRUE(r.reduced.checkStructure());
}

TEST(Stage1Deflation, ImpulsiveLadderCancelsInPhi) {
  ds::DescriptorSystem g = impulsiveLadder(3);
  shh::ShhRealization phi = buildPhi(g);
  ImpulseDeflationResult r = deflateImpulseModes(phi);
  // The port inductor chain cancels against its adjoint: at least one
  // direction is deflated.
  EXPECT_GT(r.removed, 0u);
  EXPECT_TRUE(r.reduced.checkStructure());
  EXPECT_EQ(r.reduced.order(), phi.order() - r.removed);
}

TEST(Stage1Deflation, TransferPreserved) {
  ds::DescriptorSystem g = impulsiveLadder(2);
  shh::ShhRealization phi = buildPhi(g);
  ImpulseDeflationResult r = deflateImpulseModes(phi);
  ASSERT_GT(r.removed, 0u);
  ds::DescriptorSystem before = phi.toDescriptor();
  ds::DescriptorSystem after = r.reduced.toDescriptor();
  for (double w : {0.5, 3.0, 200.0})
    expectSameTransferAt(before, after, w, 1e-7 * (1.0 + w));
}

TEST(Stage1Deflation, JDualityOfSubspaces) {
  // J V_o must consist of impulse-uncontrollable directions:
  // w = J v satisfies E^T w = 0, A^T w in Im E^T, B^T w = 0.
  ds::DescriptorSystem g = impulsiveLadder(2);
  shh::ShhRealization phi = buildPhi(g);
  Matrix vo = impulseUnobservableSubspace(phi);
  ASSERT_GT(vo.cols(), 0u);
  Matrix jv = shh::applyJ(vo);
  EXPECT_LT(linalg::multiply(phi.e, true, jv, false).maxAbs(), 1e-9);
  EXPECT_LT(linalg::multiply(phi.b(), true, jv, false).maxAbs(), 1e-9);
  // A^T (Jv) must lie in Im(E^T) = Ker(E)^perp:
  Matrix atJv = linalg::multiply(phi.a, true, jv, false);
  Matrix kerE = linalg::kernel(phi.e);
  EXPECT_LT(linalg::atb(kerE, atJv).maxAbs(), 1e-8);
}

TEST(Stage2Nondynamic, ImpulseFreeLadderPasses) {
  shh::ShhRealization phi = buildPhi(impulseFreeLadder(3));
  ImpulseDeflationResult s1 = deflateImpulseModes(phi);
  NondynamicRemovalResult s2 = removeNondynamicModes(s1.reduced);
  EXPECT_TRUE(s2.impulseFree);
  EXPECT_GT(s2.removed, 0u);  // ladder midnodes are nondynamic
  EXPECT_TRUE(s2.shh.checkStructure());
  // E3 nonsingular.
  EXPECT_EQ(linalg::rank(s2.shh.e), s2.shh.order());
}

TEST(Stage2Nondynamic, TransferPreserved) {
  shh::ShhRealization phi = buildPhi(impulseFreeLadder(2));
  ImpulseDeflationResult s1 = deflateImpulseModes(phi);
  NondynamicRemovalResult s2 = removeNondynamicModes(s1.reduced);
  ASSERT_TRUE(s2.impulseFree);
  ds::DescriptorSystem before = s1.reduced.toDescriptor();
  ds::DescriptorSystem after = s2.shh.toDescriptor();
  for (double w : {0.7, 10.0, 1e4})
    expectSameTransferAt(before, after, w, 1e-6 * (1.0 + w));
}

TEST(Stage2Nondynamic, DetectsResidualImpulses) {
  // Feed the *unreduced* Phi of a system with observable+controllable
  // impulsive modes (an asymmetric-M1 mutant whose chains do NOT cancel)
  // into stage 2 after stage 1: A22 must be singular.
  ds::DescriptorSystem g;
  g.e = Matrix{{0.0, 1.0}, {0.0, 0.0}};
  g.a = Matrix::identity(2);
  g.b = Matrix{{0.0}, {1.0}};
  g.c = Matrix{{1.0, 0.0}};  // G(s) = -s: M1 = -1, does NOT cancel sign-wise
  g.d = Matrix{{1.0}};
  // M1 = -1 is symmetric, so the chain DOES cancel in Phi. Use instead a
  // two-port with M1 = [0 1; 0 0] (not even symmetric):
  ds::DescriptorSystem g2;
  g2.e = Matrix::zeros(2, 2);
  g2.e(0, 1) = 1.0;
  g2.a = Matrix::identity(2);
  g2.b = Matrix{{0.0, 0.0}, {1.0, 0.0}};
  g2.c = Matrix{{0.0, 0.0}, {-1.0, 0.0}};
  g2.d = Matrix::identity(2);
  // G2(s) = I + [0 0; s 0]: M1 = [0 0; 1 0] asymmetric => Phi has
  // observable impulsive modes that survive stage 1.
  shh::ShhRealization phi = buildPhi(g2);
  ImpulseDeflationResult s1 = deflateImpulseModes(phi);
  NondynamicRemovalResult s2 = removeNondynamicModes(s1.reduced);
  EXPECT_FALSE(s2.impulseFree);
}

TEST(Stage3ProperPart, LadderProperPartMatchesPhi) {
  ds::DescriptorSystem g = impulseFreeLadder(2);
  shh::ShhRealization phi = buildPhi(g);
  ImpulseDeflationResult s1 = deflateImpulseModes(phi);
  NondynamicRemovalResult s2 = removeNondynamicModes(s1.reduced);
  ASSERT_TRUE(s2.impulseFree);
  ProperPartResult pp = extractProperPart(s2.shh);
  ASSERT_TRUE(pp.ok);
  // Hp + Hp~ must reproduce Phi on the axis: Phi(jw) = 2 Herm(Hp(jw)).
  ds::DescriptorSystem hp;
  hp.e = Matrix::identity(pp.lambda.rows());
  hp.a = pp.lambda;
  hp.b = pp.b1;
  hp.c = pp.c1;
  hp.d = pp.dHalf;
  ds::DescriptorSystem phiDs = phi.toDescriptor();
  for (double w : {0.4, 5.0, 3e3}) {
    ds::TransferValue hpv = ds::evalTransfer(hp, 0.0, w);
    ds::TransferValue phiv = ds::evalTransfer(phiDs, 0.0, w);
    // Phi = Hp + Hp~: real parts add, imaginary parts cancel pairwise
    // (scalar port => Im Phi = 0).
    expectMatrixNear(hpv.re + hpv.re.transposed(), phiv.re,
                     1e-6 * (1.0 + phiv.re.maxAbs()));
  }
  // Lambda is Hurwitz.
  for (const auto& l : linalg::eigenvalues(pp.lambda))
    EXPECT_LT(l.real(), 0.0);
}

TEST(Stage3ProperPart, HamiltonianIntermediate) {
  ds::DescriptorSystem g = impulseFreeLadder(3);
  shh::ShhRealization phi = buildPhi(g);
  ImpulseDeflationResult s1 = deflateImpulseModes(phi);
  NondynamicRemovalResult s2 = removeNondynamicModes(s1.reduced);
  ASSERT_TRUE(s2.impulseFree);
  ProperPartResult pp = extractProperPart(s2.shh);
  ASSERT_TRUE(pp.ok);
  EXPECT_TRUE(control::isHamiltonian(pp.a4, 1e-7));
}

TEST(M1ExtractionTest, ImpulseFreeGivesZero) {
  M1Extraction m1 = extractM1(impulseFreeLadder(3));
  EXPECT_EQ(m1.chainCount, 0u);
  EXPECT_TRUE(m1.symmetric);
  EXPECT_TRUE(m1.psd);
  EXPECT_EQ(m1.m1.maxAbs(), 0.0);
}

TEST(M1ExtractionTest, PortInductorGivesInductance) {
  circuits::LadderOptions opt;
  opt.sections = 3;
  opt.l = 4.2e-3;
  ds::DescriptorSystem g = circuits::makeRlcLadder(opt);
  M1Extraction m1 = extractM1(g);
  EXPECT_GE(m1.chainCount, 1u);
  EXPECT_TRUE(m1.symmetric);
  EXPECT_TRUE(m1.psd);
  EXPECT_NEAR(m1.m1(0, 0), opt.l, 1e-9);
}

TEST(M1ExtractionTest, PureDifferentiator) {
  ds::DescriptorSystem g;
  g.e = Matrix{{0.0, 1.0}, {0.0, 0.0}};
  g.a = Matrix::identity(2);
  g.b = Matrix{{0.0}, {1.0}};
  g.c = Matrix{{-1.0, 0.0}};
  g.d = Matrix{{0.0}};
  M1Extraction m1 = extractM1(g);
  EXPECT_EQ(m1.chainCount, 1u);
  EXPECT_NEAR(m1.m1(0, 0), 1.0, 1e-12);
  EXPECT_TRUE(m1.psd);
}

TEST(M1ExtractionTest, IndefiniteM1Detected) {
  M1Extraction m1 = extractM1(circuits::makeNonPassiveIndefiniteM1());
  EXPECT_EQ(m1.chainCount, 2u);
  EXPECT_TRUE(m1.symmetric);
  EXPECT_FALSE(m1.psd);
  EXPECT_NEAR(m1.m1(0, 0), 1.0, 1e-10);
  EXPECT_NEAR(m1.m1(1, 1), -1.0, 1e-10);
}

TEST(HigherOrderCheck, DetectsGrade3Chains) {
  EXPECT_TRUE(
      hasHigherOrderImpulses(circuits::makeNonPassiveHigherOrderImpulse()));
  EXPECT_FALSE(hasHigherOrderImpulses(impulsiveLadder(2)));
  EXPECT_FALSE(hasHigherOrderImpulses(impulseFreeLadder(2)));
}

}  // namespace
}  // namespace shhpass::core
