// Property-based sweeps over the whole pipeline: structural invariants
// that must hold for every passive model the generators can produce, and
// agreement between independent implementations (SHH test vs Weierstrass
// vs frequency sampling).
#include <gtest/gtest.h>

#include <cmath>

#include "circuits/generators.hpp"
#include "core/impulse_deflation.hpp"
#include "core/markov.hpp"
#include "core/nondynamic.hpp"
#include "core/passivity_test.hpp"
#include "core/phi_builder.hpp"
#include "ds/balance.hpp"
#include "ds/impulse_tests.hpp"
#include "ds/weierstrass.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/svd.hpp"
#include "test_support.hpp"

namespace shhpass {
namespace {

using linalg::Matrix;

struct LadderCase {
  std::size_t sections;
  bool capAtPort;
  std::size_t impulsiveEvery;
  bool twoPort;
};

class LadderSweep : public ::testing::TestWithParam<LadderCase> {};

ds::DescriptorSystem makeCase(const LadderCase& c) {
  circuits::LadderOptions opt;
  opt.sections = c.sections;
  opt.capAtPort = c.capAtPort;
  opt.impulsiveEvery = c.impulsiveEvery;
  opt.twoPort = c.twoPort;
  return circuits::makeRlcLadder(opt);
}

TEST_P(LadderSweep, PhysicalLadderIsPassive) {
  ds::DescriptorSystem g = makeCase(GetParam());
  core::PassivityResult r = core::testPassivityShh(g);
  EXPECT_TRUE(r.passive) << core::failureStageName(r.failure);
}

TEST_P(LadderSweep, ShhAgreesWithWeierstrass) {
  ds::DescriptorSystem g = makeCase(GetParam());
  EXPECT_EQ(core::testPassivityShh(g).passive,
            ds::testPassivityWeierstrass(g).passive);
}

TEST_P(LadderSweep, FrequencySamplesNonNegative) {
  ds::DescriptorSystem g = makeCase(GetParam());
  for (double w : {0.0, 1.0, 1e2, 1e5})
    EXPECT_GE(ds::popovMinEigenvalueDs(g, w), -1e-9) << "w=" << w;
}

TEST_P(LadderSweep, M1AlwaysSymmetricPsd) {
  ds::DescriptorSystem g = makeCase(GetParam());
  core::M1Extraction m1 = core::extractM1(ds::balanceDescriptor(g).sys);
  EXPECT_TRUE(m1.symmetric);
  EXPECT_TRUE(m1.psd);
}

TEST_P(LadderSweep, CensusConsistentWithDeflationCounts) {
  // 2 * (impulsive chains of G) directions cancel inside Phi per family;
  // the deflation removes a subspace of dimension >= the chain count.
  ds::DescriptorSystem g = makeCase(GetParam());
  ds::BalancedSystem bal = ds::balanceDescriptor(g);
  ds::ModeCensus mc = ds::censusModes(bal.sys);
  shh::ShhRealization phi = core::buildPhi(bal.sys);
  core::ImpulseDeflationResult s1 = core::deflateImpulseModes(phi);
  if (mc.impulsive == 0) {
    EXPECT_EQ(s1.removed, 0u);
  } else {
    EXPECT_GE(s1.removed, mc.impulsive);
    EXPECT_LE(s1.removed, 4 * mc.impulsive);
  }
  // Stage 2 on the result must always be impulse-free for these models.
  core::NondynamicRemovalResult s2 = core::removeNondynamicModes(s1.reduced);
  EXPECT_TRUE(s2.impulseFree);
  // Total eliminated states: everything except the twice-order proper part.
  EXPECT_EQ(s1.removed + s2.removed + s2.shh.order(), 2 * mc.order);
}

TEST_P(LadderSweep, PipelinePreservesPhiOnAxis) {
  ds::DescriptorSystem g = makeCase(GetParam());
  ds::BalancedSystem bal = ds::balanceDescriptor(g);
  shh::ShhRealization phi = core::buildPhi(bal.sys);
  core::ImpulseDeflationResult s1 = core::deflateImpulseModes(phi);
  core::NondynamicRemovalResult s2 = core::removeNondynamicModes(s1.reduced);
  ASSERT_TRUE(s2.impulseFree);
  ds::DescriptorSystem before = phi.toDescriptor();
  ds::DescriptorSystem after = s2.shh.toDescriptor();
  for (double w : {0.3, 7.0}) {
    ds::TransferValue a = ds::evalTransfer(before, 0.0, w);
    ds::TransferValue b = ds::evalTransfer(after, 0.0, w);
    EXPECT_LT((a.re - b.re).maxAbs(), 1e-6 * (1.0 + a.re.maxAbs()))
        << "w=" << w;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, LadderSweep,
    ::testing::Values(LadderCase{2, true, 0, false},
                      LadderCase{2, false, 0, false},
                      LadderCase{4, true, 0, true},
                      LadderCase{4, false, 2, false},
                      LadderCase{6, true, 3, false},
                      LadderCase{6, false, 0, true},
                      LadderCase{9, true, 2, true},
                      LadderCase{9, false, 3, false}));

class RandomNetSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomNetSweep, RandomNetworksPassive) {
  ds::DescriptorSystem g = circuits::makeRandomRlcNetwork(9, GetParam());
  core::PassivityResult r = core::testPassivityShh(g);
  EXPECT_TRUE(r.passive) << core::failureStageName(r.failure);
}

TEST_P(RandomNetSweep, SparseSingularVariantsHandled) {
  ds::DescriptorSystem g =
      circuits::makeRandomRlcNetwork(8, GetParam(), /*sprinkle=*/true);
  core::PassivityResult r = core::testPassivityShh(g);
  EXPECT_TRUE(r.passive) << core::failureStageName(r.failure);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetSweep,
                         ::testing::Range(100u, 110u));

TEST(AdjointProperties, InvolutionAndHermitianPhi) {
  ds::DescriptorSystem g = circuits::makeRandomRlcNetwork(6, 777);
  // adjoint(adjoint(G)) == G pointwise.
  ds::DescriptorSystem gg = ds::adjoint(ds::adjoint(g));
  for (double w : {0.4, 12.0}) {
    ds::TransferValue a = ds::evalTransfer(g, 0.2, w);
    ds::TransferValue b = ds::evalTransfer(gg, 0.2, w);
    EXPECT_LT((a.re - b.re).maxAbs(), 1e-9);
    EXPECT_LT((a.im - b.im).maxAbs(), 1e-9);
  }
}

TEST(StructuralInvariants, PhiRealizationStructurePreservedByStages) {
  circuits::LadderOptions opt;
  opt.sections = 5;
  opt.impulsiveEvery = 2;
  ds::DescriptorSystem g = circuits::makeRlcLadder(opt);
  ds::BalancedSystem bal = ds::balanceDescriptor(g);
  shh::ShhRealization phi = core::buildPhi(bal.sys);
  ASSERT_TRUE(phi.checkStructure());
  core::ImpulseDeflationResult s1 = core::deflateImpulseModes(phi);
  ASSERT_TRUE(s1.reduced.checkStructure());
  core::NondynamicRemovalResult s2 = core::removeNondynamicModes(s1.reduced);
  ASSERT_TRUE(s2.impulseFree);
  EXPECT_TRUE(s2.shh.checkStructure());
  // E3 nonsingular, as required for the Eq.-21 normalization.
  EXPECT_EQ(linalg::rank(s2.shh.e), s2.shh.order());
}

TEST(NonPassiveMutants, AllDetectedAcrossSizes) {
  for (std::size_t sections : {3u, 5u, 8u}) {
    EXPECT_FALSE(core::testPassivityShh(
                     circuits::makeNonPassiveNegativeFeedthrough(sections))
                     .passive)
        << sections;
  }
  EXPECT_FALSE(
      core::testPassivityShh(circuits::makeNonPassiveIndefiniteM1()).passive);
  EXPECT_FALSE(
      core::testPassivityShh(circuits::makeNonPassiveHigherOrderImpulse())
          .passive);
}

}  // namespace
}  // namespace shhpass
