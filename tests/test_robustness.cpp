// Robustness / failure-injection tests: hostile scales, degenerate inputs,
// and API misuse must produce exceptions or clean verdicts, never crashes
// or silent garbage.
#include <gtest/gtest.h>

#include <cmath>

#include "circuits/generators.hpp"
#include "circuits/mna.hpp"
#include "core/passivity_test.hpp"
#include "ds/balance.hpp"
#include "ds/descriptor.hpp"
#include "lmi/lmi_passivity.hpp"
#include "test_support.hpp"

namespace shhpass {
namespace {

using linalg::Matrix;

TEST(Robustness, ExtremeUnitScales) {
  // Femtofarad / picohenry / megaohm units: 1e-15 vs 1e6 dynamic range.
  circuits::LadderOptions opt;
  opt.sections = 3;
  opt.capAtPort = true;
  opt.c = 1e-15;
  opt.l = 1e-12;
  opt.r = 1e6;
  opt.shuntR = 5e6;
  ds::DescriptorSystem g = circuits::makeRlcLadder(opt);
  core::PassivityResult r = core::testPassivityShh(g);
  EXPECT_TRUE(r.passive) << core::failureStageName(r.failure);
}

TEST(Robustness, TinyAndHugeUniformScaling) {
  // G and alpha*G have identical passivity for alpha > 0; verify the
  // verdict survives scaling B, C by 1e+-8.
  circuits::LadderOptions opt;
  opt.sections = 2;
  opt.capAtPort = true;
  ds::DescriptorSystem g = circuits::makeRlcLadder(opt);
  for (double alpha : {1e-8, 1e8}) {
    ds::DescriptorSystem scaled = g;
    scaled.c = alpha * scaled.c;
    core::PassivityResult r = core::testPassivityShh(scaled);
    EXPECT_TRUE(r.passive)
        << "alpha=" << alpha << ": " << core::failureStageName(r.failure);
  }
}

TEST(Robustness, ZeroTransferFunctionIsPassiveBoundary) {
  // G == 0 (B = C = D = 0): passive (dissipates nothing, generates
  // nothing). The pipeline must not divide by a zero scale anywhere.
  ds::DescriptorSystem g;
  g.e = Matrix::identity(3);
  g.a = -1.0 * Matrix::identity(3);
  g.b = Matrix(3, 1);
  g.c = Matrix(1, 3);
  g.d = Matrix(1, 1);
  core::PassivityResult r = core::testPassivityShh(g);
  EXPECT_TRUE(r.passive) << core::failureStageName(r.failure);
}

TEST(Robustness, PureResistorNetworkStatic) {
  // All-resistive network: E = 0 entirely, G(s) = const > 0.
  circuits::Netlist net(2);
  net.addResistor(1, 2, 2.0);
  net.addResistor(2, 0, 3.0);
  net.addPort(1);
  ds::DescriptorSystem g = circuits::stampMna(net);
  EXPECT_EQ(g.e.maxAbs(), 0.0);
  core::PassivityResult r = core::testPassivityShh(g);
  EXPECT_TRUE(r.passive) << core::failureStageName(r.failure);
  ds::TransferValue z = ds::evalTransfer(g, 0.0, 1.0);
  EXPECT_NEAR(z.re(0, 0), 5.0, 1e-10);
}

TEST(Robustness, SingleStateEdgeCases) {
  // Order-1 descriptor systems through the whole pipeline.
  ds::DescriptorSystem dyn;  // G = 1/(s+1)
  dyn.e = Matrix{{1.0}};
  dyn.a = Matrix{{-1.0}};
  dyn.b = Matrix{{1.0}};
  dyn.c = Matrix{{1.0}};
  dyn.d = Matrix{{0.0}};
  EXPECT_TRUE(core::testPassivityShh(dyn).passive);

  ds::DescriptorSystem nondyn;  // E = 0: G = -c b / a = 1 (static)
  nondyn.e = Matrix{{0.0}};
  nondyn.a = Matrix{{-1.0}};
  nondyn.b = Matrix{{1.0}};
  nondyn.c = Matrix{{1.0}};
  nondyn.d = Matrix{{0.0}};
  EXPECT_TRUE(core::testPassivityShh(nondyn).passive);
}

TEST(Robustness, MimoPortCountMismatchCaught) {
  ds::DescriptorSystem g;
  g.e = Matrix::identity(2);
  g.a = -1.0 * Matrix::identity(2);
  g.b = Matrix(2, 3, 0.1);
  g.c = Matrix(2, 2, 0.1);
  g.d = Matrix(2, 3);
  EXPECT_EQ(core::testPassivityShh(g).failure,
            core::FailureStage::NotSquare);
  EXPECT_THROW(lmi::testPassivityLmi(g), std::invalid_argument);
}

TEST(Robustness, BalanceHandlesZeroRowsAndColumns) {
  // A state completely decoupled in E and A rows must not produce NaNs.
  ds::DescriptorSystem g;
  g.e = Matrix::zeros(2, 2);
  g.e(0, 0) = 1.0;
  g.a = Matrix::zeros(2, 2);
  g.a(0, 0) = -1.0;
  g.a(1, 1) = -1.0;
  g.b = Matrix{{1.0}, {0.0}};
  g.c = Matrix{{1.0, 0.0}};
  g.d = Matrix{{0.0}};
  ds::BalancedSystem bal = ds::balanceDescriptor(g);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_FALSE(std::isnan(bal.sys.e(i, j)));
      EXPECT_FALSE(std::isnan(bal.sys.a(i, j)));
    }
}

TEST(Robustness, RepeatedInvocationDeterminism) {
  // No hidden state: two runs give bit-identical diagnostics.
  ds::DescriptorSystem g = circuits::makeRandomRlcNetwork(7, 99);
  core::PassivityResult a = core::testPassivityShh(g);
  core::PassivityResult b = core::testPassivityShh(g);
  EXPECT_EQ(a.passive, b.passive);
  EXPECT_EQ(a.removedImpulsive, b.removedImpulsive);
  EXPECT_EQ(a.removedNondynamic, b.removedNondynamic);
  EXPECT_TRUE(a.m1.approxEqual(b.m1, 0.0));
}

TEST(Robustness, ImpulsiveBenchmarkModelsNoFalseLosslessVerdict) {
  // Regression: before the residual-checked Schur reordering, the long
  // bubbling sequences on the proper-part Hamiltonian of
  // makeBenchmarkModel(25, true) drifted eigenvalues across the imaginary
  // axis, miscounted the stable/antistable split, and produced a false
  // LOSSLESS_AXIS_MODES verdict on a passive RLC ladder. All impulsive
  // benchmark orders must now come back passive, with every adjacent-block
  // exchange accepted.
  for (std::size_t order : {25u, 30u, 35u}) {
    ds::DescriptorSystem g = circuits::makeBenchmarkModel(order, true);
    core::PassivityResult r = core::testPassivityShh(g);
    EXPECT_TRUE(r.passive)
        << "order=" << order << ": " << core::failureStageName(r.failure);
    EXPECT_NE(r.failure, core::FailureStage::LosslessAxisModes)
        << "order=" << order;
    EXPECT_EQ(r.reorder.rejectedSwaps, 0u) << "order=" << order;
    EXPECT_GT(r.reorder.swaps, 0u) << "order=" << order;
  }
}

TEST(Robustness, NearlyPassiveBoundaryCases) {
  // G = eps + 1/(s+1) for tiny eps stays passive; G = -eps + ... flips
  // once eps is resolvable. Verifies the verdict degrades monotonically.
  for (double eps : {1e-3, 1e-2, 1e-1}) {
    ds::DescriptorSystem g;
    g.e = Matrix{{1.0}};
    g.a = Matrix{{-1.0}};
    g.b = Matrix{{1.0}};
    g.c = Matrix{{1.0}};
    g.d = Matrix{{-eps}};
    // Re G(j inf) = -eps < 0: non-passive at any resolvable eps.
    EXPECT_FALSE(core::testPassivityShh(g).passive) << eps;
  }
}

}  // namespace
}  // namespace shhpass
