// Unit and property tests for the SVD: reconstruction, orthogonality, rank,
// kernel/range bases, pseudoinverse. The SVD is the rank oracle for every
// deflation decision in the passivity pipeline, so it is tested heavily.
#include <gtest/gtest.h>

#include <algorithm>

#include "linalg/blas.hpp"
#include "linalg/svd.hpp"
#include "test_support.hpp"

namespace shhpass::linalg {
namespace {

using testing::expectMatrixNear;
using testing::expectOrthonormalColumns;
using testing::randomMatrix;
using testing::randomRankDeficient;

Matrix reconstruct(const SVD& svd) {
  const auto& s = svd.singularValues();
  Matrix us = svd.u();
  for (std::size_t j = 0; j < s.size() && j < us.cols(); ++j)
    for (std::size_t i = 0; i < us.rows(); ++i) us(i, j) *= s[j];
  // Keep only the first s.size() columns of v for the product.
  Matrix vt = svd.v().block(0, 0, svd.v().rows(), s.size()).transposed();
  return us.block(0, 0, us.rows(), s.size()) * vt;
}

TEST(Svd, DiagonalMatrix) {
  SVD svd(Matrix::diag({3.0, 1.0, 2.0}));
  ASSERT_EQ(svd.singularValues().size(), 3u);
  EXPECT_NEAR(svd.singularValues()[0], 3.0, 1e-12);
  EXPECT_NEAR(svd.singularValues()[1], 2.0, 1e-12);
  EXPECT_NEAR(svd.singularValues()[2], 1.0, 1e-12);
}

TEST(Svd, SingularValuesSortedDescending) {
  SVD svd(randomMatrix(7, 5, 71));
  const auto& s = svd.singularValues();
  EXPECT_TRUE(std::is_sorted(s.rbegin(), s.rend()));
  for (double v : s) EXPECT_GE(v, 0.0);
}

TEST(Svd, ReconstructionSquare) {
  Matrix a = randomMatrix(6, 6, 72);
  expectMatrixNear(reconstruct(SVD(a)), a, 1e-11);
}

TEST(Svd, ReconstructionTall) {
  Matrix a = randomMatrix(9, 4, 73);
  SVD svd(a);
  expectMatrixNear(reconstruct(svd), a, 1e-11);
  expectOrthonormalColumns(svd.u());
  expectOrthonormalColumns(svd.v());
}

TEST(Svd, ReconstructionWide) {
  Matrix a = randomMatrix(4, 9, 74);
  SVD svd(a);
  expectMatrixNear(reconstruct(svd), a, 1e-11);
  expectOrthonormalColumns(svd.u());
  expectOrthonormalColumns(svd.v());
}

TEST(Svd, RankDetection) {
  EXPECT_EQ(SVD(randomRankDeficient(8, 8, 3, 75)).rank(), 3u);
  EXPECT_EQ(SVD(randomRankDeficient(5, 9, 2, 76)).rank(), 2u);
  EXPECT_EQ(SVD(randomRankDeficient(9, 5, 4, 77)).rank(), 4u);
  EXPECT_EQ(SVD(Matrix::zeros(4, 6)).rank(), 0u);
  EXPECT_EQ(SVD(Matrix::identity(5)).rank(), 5u);
}

TEST(Svd, NullspaceIsKernel) {
  Matrix a = randomRankDeficient(6, 8, 3, 78);
  SVD svd(a);
  Matrix ns = svd.nullspace();
  EXPECT_EQ(ns.cols(), 5u);
  expectOrthonormalColumns(ns);
  EXPECT_LT((a * ns).maxAbs(), 1e-10);
}

TEST(Svd, NullspaceTallMatrix) {
  Matrix a = randomRankDeficient(8, 5, 2, 79);
  Matrix ns = SVD(a).nullspace();
  EXPECT_EQ(ns.cols(), 3u);
  EXPECT_LT((a * ns).maxAbs(), 1e-10);
}

TEST(Svd, LeftNullspace) {
  Matrix a = randomRankDeficient(8, 5, 2, 80);
  Matrix lns = SVD(a).leftNullspace();
  EXPECT_EQ(lns.cols(), 6u);
  expectOrthonormalColumns(lns);
  EXPECT_LT(atb(lns, a).maxAbs(), 1e-10);
}

TEST(Svd, LeftNullspaceWideMatrix) {
  Matrix a = randomRankDeficient(4, 9, 2, 81);
  Matrix lns = SVD(a).leftNullspace();
  EXPECT_EQ(lns.cols(), 2u);
  EXPECT_LT(atb(lns, a).maxAbs(), 1e-10);
}

TEST(Svd, RangeSpansColumns) {
  Matrix a = randomRankDeficient(7, 6, 4, 82);
  SVD svd(a);
  Matrix q = svd.range();
  EXPECT_EQ(q.cols(), 4u);
  Matrix proj = q * atb(q, a);
  expectMatrixNear(proj, a, 1e-10);
}

TEST(Svd, FullRankNullspaceEmpty) {
  Matrix a = randomMatrix(5, 5, 83);
  for (std::size_t i = 0; i < 5; ++i) a(i, i) += 4.0;
  EXPECT_EQ(SVD(a).nullspace().cols(), 0u);
  EXPECT_EQ(SVD(a).leftNullspace().cols(), 0u);
}

TEST(Svd, PseudoInverseMoorePenrose) {
  Matrix a = randomRankDeficient(6, 4, 2, 84);
  Matrix x = pseudoInverse(a);
  // Moore-Penrose axioms: A X A = A, X A X = X, (AX)^T = AX, (XA)^T = XA.
  expectMatrixNear(a * x * a, a, 1e-9);
  expectMatrixNear(x * a * x, x, 1e-9);
  EXPECT_TRUE((a * x).isSymmetric(1e-9));
  EXPECT_TRUE((x * a).isSymmetric(1e-9));
}

TEST(Svd, PseudoInverseOfInvertibleIsInverse) {
  Matrix a = randomMatrix(4, 4, 85);
  for (std::size_t i = 0; i < 4; ++i) a(i, i) += 3.0;
  expectMatrixNear(a * pseudoInverse(a), Matrix::identity(4), 1e-9);
}

TEST(Svd, CondOfOrthogonalIsOne) {
  Matrix q = SVD(randomMatrix(5, 5, 86)).u();
  EXPECT_NEAR(SVD(q).cond(), 1.0, 1e-8);
}

TEST(Svd, CondHugeForNumericallySingular) {
  // A rank-2 product has trailing singular values at round-off level, so the
  // condition number is astronomically large (or infinite if exactly zero).
  const double c = SVD(randomRankDeficient(4, 4, 2, 87)).cond();
  EXPECT_TRUE(std::isinf(c) || c > 1e12);
}

TEST(Svd, VectorShapes) {
  SVD col(randomMatrix(6, 1, 88));
  EXPECT_EQ(col.singularValues().size(), 1u);
  SVD row(randomMatrix(1, 6, 89));
  EXPECT_EQ(row.singularValues().size(), 1u);
  EXPECT_NEAR(col.singularValues()[0],
              randomMatrix(6, 1, 88).normFrobenius(), 1e-12);
}

TEST(Svd, KernelConvenience) {
  Matrix a{{1, 1, 0}, {0, 0, 0}, {1, 1, 0}};
  Matrix k = kernel(a);
  EXPECT_EQ(k.cols(), 2u);
  EXPECT_LT((a * k).maxAbs(), 1e-12);
}

// Property sweep: reconstruction and orthogonality across shapes.
class SvdShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, unsigned>> {};

TEST_P(SvdShapeSweep, ReconstructsAndOrthogonal) {
  const auto [m, n, seed] = GetParam();
  Matrix a = randomMatrix(m, n, seed);
  SVD svd(a);
  expectMatrixNear(reconstruct(svd), a, 1e-10 * std::max(1.0, a.maxAbs()));
  expectOrthonormalColumns(svd.u(), 1e-9);
  expectOrthonormalColumns(svd.v(), 1e-9);
  EXPECT_EQ(svd.rank(), std::min<std::size_t>(m, n));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdShapeSweep,
    ::testing::Values(std::make_tuple(1, 1, 90), std::make_tuple(2, 7, 91),
                      std::make_tuple(7, 2, 92), std::make_tuple(10, 10, 93),
                      std::make_tuple(13, 11, 94), std::make_tuple(11, 13, 95),
                      std::make_tuple(20, 3, 96), std::make_tuple(3, 20, 97),
                      std::make_tuple(17, 17, 98)));

}  // namespace
}  // namespace shhpass::linalg
