// Unit tests for LU and Cholesky factorizations and the PSD probe.
#include <gtest/gtest.h>

#include <stdexcept>

#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "test_support.hpp"

namespace shhpass::linalg {
namespace {

using testing::expectMatrixNear;
using testing::randomMatrix;
using testing::randomSpd;
using testing::randomSymmetric;

TEST(LU, SolvesKnownSystem) {
  Matrix a{{4, 3}, {6, 3}};
  Matrix b{{10}, {12}};
  Matrix x = solve(a, b);
  expectMatrixNear(a * x, b, 1e-12);
}

TEST(LU, SolveMultipleRhs) {
  Matrix a = randomMatrix(6, 6, 21);
  for (std::size_t i = 0; i < 6; ++i) a(i, i) += 4.0;
  Matrix b = randomMatrix(6, 3, 22);
  Matrix x = LU(a).solve(b);
  expectMatrixNear(a * x, b, 1e-10);
}

TEST(LU, SolveTransposed) {
  Matrix a = randomMatrix(5, 5, 23);
  for (std::size_t i = 0; i < 5; ++i) a(i, i) += 3.0;
  Matrix b = randomMatrix(5, 2, 24);
  Matrix x = LU(a).solveTransposed(b);
  expectMatrixNear(a.transposed() * x, b, 1e-10);
}

TEST(LU, InverseRoundTrip) {
  Matrix a = randomMatrix(7, 7, 25);
  for (std::size_t i = 0; i < 7; ++i) a(i, i) += 5.0;
  expectMatrixNear(a * inverse(a), Matrix::identity(7), 1e-10);
  expectMatrixNear(inverse(a) * a, Matrix::identity(7), 1e-10);
}

TEST(LU, DeterminantOfTriangular) {
  Matrix a{{2, 1, 0}, {0, 3, 5}, {0, 0, 4}};
  EXPECT_NEAR(LU(a).determinant(), 24.0, 1e-12);
}

TEST(LU, DeterminantSignWithPivoting) {
  // Permutation matrix has determinant -1.
  Matrix p{{0, 1}, {1, 0}};
  EXPECT_NEAR(LU(p).determinant(), -1.0, 1e-15);
}

TEST(LU, SingularDetection) {
  Matrix a{{1, 2}, {2, 4}};
  LU lu(a);
  EXPECT_TRUE(lu.isSingular(1e-12));
  EXPECT_THROW(lu.solve(Matrix(2, 1)), std::runtime_error);
}

TEST(LU, NonSquareThrows) {
  EXPECT_THROW(LU(Matrix(2, 3)), std::invalid_argument);
}

TEST(LU, RcondReasonableForWellConditioned) {
  Matrix a = Matrix::identity(5);
  LU lu(a);
  const double rc = lu.rcond(a.norm1());
  EXPECT_GT(rc, 0.1);
  EXPECT_LE(rc, 1.0 + 1e-12);
}

TEST(Cholesky, FactorsSpd) {
  Matrix a = randomSpd(6, 31);
  Cholesky chol(a);
  ASSERT_TRUE(chol.success());
  const Matrix& l = chol.factor();
  expectMatrixNear(l * l.transposed(), a, 1e-9 * a.maxAbs());
}

TEST(Cholesky, SolveMatchesLu) {
  Matrix a = randomSpd(5, 32);
  Matrix b = randomMatrix(5, 2, 33);
  Cholesky chol(a);
  ASSERT_TRUE(chol.success());
  expectMatrixNear(a * chol.solve(b), b, 1e-8);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a{{1, 0}, {0, -1}};
  EXPECT_FALSE(Cholesky(a).success());
  EXPECT_THROW(Cholesky(a).solve(Matrix(2, 1)), std::runtime_error);
}

TEST(Psd, AcceptsSpdAndPsd) {
  EXPECT_TRUE(isPositiveSemidefinite(randomSpd(5, 41)));
  // Rank-1 PSD matrix.
  Matrix v = randomMatrix(4, 1, 42);
  EXPECT_TRUE(isPositiveSemidefinite(v * v.transposed()));
  // Zero matrix is PSD; empty matrix is PSD by convention.
  EXPECT_TRUE(isPositiveSemidefinite(Matrix::zeros(3, 3)));
  EXPECT_TRUE(isPositiveSemidefinite(Matrix()));
}

TEST(Psd, RejectsIndefinite) {
  Matrix a = randomSymmetric(5, 43);
  a(0, 0) = -10.0;  // force a negative eigenvalue
  EXPECT_FALSE(isPositiveSemidefinite(a));
  EXPECT_FALSE(isPositiveSemidefinite(Matrix{{-1e-3}}));
}

TEST(Psd, ToleratesTinyNegativePerturbation) {
  Matrix a = Matrix::identity(4);
  a(3, 3) = -1e-14;  // within tolerance of zero
  EXPECT_TRUE(isPositiveSemidefinite(a, 1e-9));
}

}  // namespace
}  // namespace shhpass::linalg
