// Tests for the mode census and impulse controllability/observability
// characterizations (Sec. 2.5 of the paper), plus regressions pinning
// the shared SVD rank policy (linalg/svd.hpp) at the deflation
// tolerance boundary.
#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "ds/impulse_tests.hpp"
#include "ds/svd_coords.hpp"
#include "linalg/svd.hpp"
#include "test_support.hpp"

namespace shhpass::ds {
namespace {

using linalg::Matrix;

// Index-1 system: E = diag(1, 0), A22 = -1 nonsingular.
DescriptorSystem index1() {
  DescriptorSystem s;
  s.e = Matrix::diag({1.0, 0.0});
  s.a = Matrix{{-1.0, 0.0}, {0.0, -1.0}};
  s.b = Matrix{{1.0}, {1.0}};
  s.c = Matrix{{1.0, 1.0}};
  s.d = Matrix{{0.0}};
  return s;
}

// Index-2 system (differentiator): impulsive modes present.
DescriptorSystem index2() {
  DescriptorSystem s;
  s.e = Matrix{{0.0, 1.0}, {0.0, 0.0}};
  s.a = Matrix::identity(2);
  s.b = Matrix{{0.0}, {1.0}};
  s.c = Matrix{{-1.0, 0.0}};
  s.d = Matrix{{0.0}};
  return s;
}

TEST(ModeCensusTest, RegularEAllFinite) {
  DescriptorSystem s = index1();
  s.e = Matrix::identity(2);
  ModeCensus mc = censusModes(s);
  EXPECT_EQ(mc.finite, 2u);
  EXPECT_EQ(mc.nondynamic, 0u);
  EXPECT_EQ(mc.impulsive, 0u);
}

TEST(ModeCensusTest, Index1Split) {
  ModeCensus mc = censusModes(index1());
  EXPECT_EQ(mc.order, 2u);
  EXPECT_EQ(mc.rankE, 1u);
  EXPECT_EQ(mc.finite, 1u);
  EXPECT_EQ(mc.nondynamic, 1u);
  EXPECT_EQ(mc.impulsive, 0u);
}

TEST(ModeCensusTest, Index2Split) {
  ModeCensus mc = censusModes(index2());
  EXPECT_EQ(mc.rankE, 1u);
  EXPECT_EQ(mc.finite, 0u);
  EXPECT_EQ(mc.nondynamic, 1u);
  EXPECT_EQ(mc.impulsive, 1u);
}

TEST(ImpulseFree, Classification) {
  EXPECT_TRUE(isImpulseFree(index1()));
  EXPECT_FALSE(isImpulseFree(index2()));
  // Nonsingular E is trivially impulse-free.
  DescriptorSystem reg = index1();
  reg.e = Matrix::identity(2);
  EXPECT_TRUE(isImpulseFree(reg));
}

TEST(ImpulseObservability, DifferentiatorIsObservable) {
  // The differentiator's impulsive mode shows up in the output (G = s).
  EXPECT_TRUE(isImpulseObservable(index2()));
}

TEST(ImpulseObservability, HiddenImpulsiveModeDetected) {
  // Zero the output map on the impulsive chain: mode becomes unobservable.
  DescriptorSystem s = index2();
  s.c = Matrix{{0.0, 0.0}};
  EXPECT_FALSE(isImpulseObservable(s));
  // But it is still impulse controllable through b.
  EXPECT_TRUE(isImpulseControllable(s));
}

TEST(ImpulseControllability, DrivenChainIsControllable) {
  EXPECT_TRUE(isImpulseControllable(index2()));
  DescriptorSystem s = index2();
  s.b = Matrix{{0.0}, {0.0}};
  EXPECT_FALSE(isImpulseControllable(s));
  EXPECT_TRUE(isImpulseObservable(s));
}

TEST(PencilIndexTest, KnownIndices) {
  DescriptorSystem reg = index1();
  reg.e = Matrix::identity(2);
  EXPECT_EQ(pencilIndex(reg), 0u);
  EXPECT_EQ(pencilIndex(index1()), 1u);
  EXPECT_EQ(pencilIndex(index2()), 2u);
}

TEST(PencilIndexTest, Index3Chain) {
  // 3-long nilpotent chain: index 3.
  DescriptorSystem s;
  s.e = Matrix::zeros(3, 3);
  s.e(0, 1) = 1.0;
  s.e(1, 2) = 1.0;
  s.a = Matrix::identity(3);
  s.b = Matrix(3, 1, 1.0);
  s.c = Matrix(1, 3, 1.0);
  s.d = Matrix(1, 1);
  EXPECT_EQ(pencilIndex(s), 3u);
}

TEST(CircuitModels, PlainLadderIsImpulsiveAtPort) {
  // Port node has no shunt capacitor: Z(s) ~ s*l at infinity.
  circuits::LadderOptions opt;
  opt.sections = 3;
  DescriptorSystem sys = circuits::makeRlcLadder(opt);
  EXPECT_FALSE(isImpulseFree(sys));
  // Physical RLC: the impulsive mode is both controllable and observable
  // from the port.
  EXPECT_TRUE(isImpulseControllable(sys));
  EXPECT_TRUE(isImpulseObservable(sys));
}

TEST(CircuitModels, CapAtPortMakesImpulseFree) {
  circuits::LadderOptions opt;
  opt.sections = 3;
  opt.capAtPort = true;
  DescriptorSystem sys = circuits::makeRlcLadder(opt);
  EXPECT_TRUE(isImpulseFree(sys));
  ModeCensus mc = censusModes(sys);
  EXPECT_EQ(mc.impulsive, 0u);
  EXPECT_GT(mc.nondynamic, 0u);  // midnodes carry no capacitance
}

TEST(CircuitModels, ImpulsiveSectionsIncreaseImpulsiveCount) {
  circuits::LadderOptions opt;
  opt.sections = 9;
  opt.capAtPort = true;
  ModeCensus base = censusModes(circuits::makeRlcLadder(opt));
  opt.impulsiveEvery = 3;
  ModeCensus imp = censusModes(circuits::makeRlcLadder(opt));
  EXPECT_GT(imp.impulsive, base.impulsive);
}

TEST(CircuitModels, CensusAddsUp) {
  circuits::LadderOptions opt;
  opt.sections = 6;
  opt.impulsiveEvery = 2;
  ModeCensus mc = censusModes(circuits::makeRlcLadder(opt));
  EXPECT_EQ(mc.finite + mc.nondynamic + mc.impulsive, mc.order);
}

// ------------- shared rank policy at the deflation tolerance boundary

// E = diag(1, delta, 0): whether the delta state counts as dynamic is
// exactly one rankFromSingularValues decision. This pins the policy the
// whole deflation chain keys off: strict sigma > tol, both sides of the
// cutoff, the exact-boundary case, and stability under roundoff-level
// tolerance wobble.
DescriptorSystem nearSingularE(double delta) {
  DescriptorSystem s;
  s.e = linalg::Matrix::diag({1.0, delta, 0.0});
  s.a = -1.0 * linalg::Matrix::identity(3);
  s.b = linalg::Matrix(3, 1, 1.0);
  s.c = linalg::Matrix(1, 3, 1.0);
  s.d = linalg::Matrix(1, 1);
  return s;
}

TEST(RankPolicyBoundary, RankEFollowsExplicitDeflationTolerance) {
  const double tol = 1e-8;
  EXPECT_EQ(toSvdCoordinates(nearSingularE(1e-6), tol).rankE, 2u);
  EXPECT_EQ(toSvdCoordinates(nearSingularE(1e-10), tol).rankE, 1u);
  // Exactly at the cutoff: the policy is strict (sigma > tol), so an
  // exactly-at-tolerance singular value is DROPPED.
  EXPECT_EQ(toSvdCoordinates(nearSingularE(tol), tol).rankE, 1u);
  // Roundoff-level wobble of the cutoff must not flip either decision.
  for (double wobble : {1.0 - 1e-13, 1.0 + 1e-13}) {
    EXPECT_EQ(toSvdCoordinates(nearSingularE(1e-6), tol * wobble).rankE, 2u);
    EXPECT_EQ(toSvdCoordinates(nearSingularE(1e-10), tol * wobble).rankE,
              1u);
  }
}

TEST(RankPolicyBoundary, RankReportRecordsDecisionSharpness) {
  // delta barely above the cutoff: kept, but the recorded margin exposes
  // how sharp the decision was (near 1 = near-flip).
  const double tol = 1e-8;
  SvdCoordinates sharp = toSvdCoordinates(nearSingularE(1.5e-8), tol);
  EXPECT_EQ(sharp.rankE, 2u);
  EXPECT_EQ(sharp.rankReport.decisions, 1u);
  EXPECT_GT(sharp.rankReport.minKeptMargin, 1.0);
  EXPECT_LT(sharp.rankReport.minKeptMargin, 2.0);  // 1.5e-8 / 1e-8
  // The trailing exact zero is dropped with a huge distance to the
  // cutoff: the dropped margin stays near 0.
  EXPECT_LT(sharp.rankReport.maxDroppedMargin, 1e-3);
  // A comfortable case: both margins far from 1.
  SvdCoordinates wide = toSvdCoordinates(nearSingularE(1e-3), tol);
  EXPECT_EQ(wide.rankReport.decisions, 1u);
  EXPECT_GT(wide.rankReport.minKeptMargin, 1e3);
}

TEST(RankPolicyBoundary, ImpulseTestsStableAcrossPolicyWobble) {
  // The Sec.-2.5 impulse characterizations are rank-decision chains; on
  // a well-separated physical model they must be invariant under
  // roundoff-level tolerance perturbation of the default policy.
  circuits::LadderOptions opt;
  opt.sections = 4;
  ds::DescriptorSystem sys = circuits::makeRlcLadder(opt);
  const double tol =
      linalg::SVD(sys.e).defaultTol();  // resolved default cutoff
  for (double wobble : {1.0 - 1e-13, 1.0, 1.0 + 1e-13}) {
    EXPECT_FALSE(isImpulseFree(sys, tol * wobble));
    EXPECT_TRUE(isImpulseControllable(sys, tol * wobble));
    EXPECT_TRUE(isImpulseObservable(sys, tol * wobble));
    EXPECT_EQ(pencilIndex(sys, tol * wobble), 2u);
  }
}

}  // namespace
}  // namespace shhpass::ds
