// Tests for the mode census and impulse controllability/observability
// characterizations (Sec. 2.5 of the paper).
#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "ds/impulse_tests.hpp"
#include "test_support.hpp"

namespace shhpass::ds {
namespace {

using linalg::Matrix;

// Index-1 system: E = diag(1, 0), A22 = -1 nonsingular.
DescriptorSystem index1() {
  DescriptorSystem s;
  s.e = Matrix::diag({1.0, 0.0});
  s.a = Matrix{{-1.0, 0.0}, {0.0, -1.0}};
  s.b = Matrix{{1.0}, {1.0}};
  s.c = Matrix{{1.0, 1.0}};
  s.d = Matrix{{0.0}};
  return s;
}

// Index-2 system (differentiator): impulsive modes present.
DescriptorSystem index2() {
  DescriptorSystem s;
  s.e = Matrix{{0.0, 1.0}, {0.0, 0.0}};
  s.a = Matrix::identity(2);
  s.b = Matrix{{0.0}, {1.0}};
  s.c = Matrix{{-1.0, 0.0}};
  s.d = Matrix{{0.0}};
  return s;
}

TEST(ModeCensusTest, RegularEAllFinite) {
  DescriptorSystem s = index1();
  s.e = Matrix::identity(2);
  ModeCensus mc = censusModes(s);
  EXPECT_EQ(mc.finite, 2u);
  EXPECT_EQ(mc.nondynamic, 0u);
  EXPECT_EQ(mc.impulsive, 0u);
}

TEST(ModeCensusTest, Index1Split) {
  ModeCensus mc = censusModes(index1());
  EXPECT_EQ(mc.order, 2u);
  EXPECT_EQ(mc.rankE, 1u);
  EXPECT_EQ(mc.finite, 1u);
  EXPECT_EQ(mc.nondynamic, 1u);
  EXPECT_EQ(mc.impulsive, 0u);
}

TEST(ModeCensusTest, Index2Split) {
  ModeCensus mc = censusModes(index2());
  EXPECT_EQ(mc.rankE, 1u);
  EXPECT_EQ(mc.finite, 0u);
  EXPECT_EQ(mc.nondynamic, 1u);
  EXPECT_EQ(mc.impulsive, 1u);
}

TEST(ImpulseFree, Classification) {
  EXPECT_TRUE(isImpulseFree(index1()));
  EXPECT_FALSE(isImpulseFree(index2()));
  // Nonsingular E is trivially impulse-free.
  DescriptorSystem reg = index1();
  reg.e = Matrix::identity(2);
  EXPECT_TRUE(isImpulseFree(reg));
}

TEST(ImpulseObservability, DifferentiatorIsObservable) {
  // The differentiator's impulsive mode shows up in the output (G = s).
  EXPECT_TRUE(isImpulseObservable(index2()));
}

TEST(ImpulseObservability, HiddenImpulsiveModeDetected) {
  // Zero the output map on the impulsive chain: mode becomes unobservable.
  DescriptorSystem s = index2();
  s.c = Matrix{{0.0, 0.0}};
  EXPECT_FALSE(isImpulseObservable(s));
  // But it is still impulse controllable through b.
  EXPECT_TRUE(isImpulseControllable(s));
}

TEST(ImpulseControllability, DrivenChainIsControllable) {
  EXPECT_TRUE(isImpulseControllable(index2()));
  DescriptorSystem s = index2();
  s.b = Matrix{{0.0}, {0.0}};
  EXPECT_FALSE(isImpulseControllable(s));
  EXPECT_TRUE(isImpulseObservable(s));
}

TEST(PencilIndexTest, KnownIndices) {
  DescriptorSystem reg = index1();
  reg.e = Matrix::identity(2);
  EXPECT_EQ(pencilIndex(reg), 0u);
  EXPECT_EQ(pencilIndex(index1()), 1u);
  EXPECT_EQ(pencilIndex(index2()), 2u);
}

TEST(PencilIndexTest, Index3Chain) {
  // 3-long nilpotent chain: index 3.
  DescriptorSystem s;
  s.e = Matrix::zeros(3, 3);
  s.e(0, 1) = 1.0;
  s.e(1, 2) = 1.0;
  s.a = Matrix::identity(3);
  s.b = Matrix(3, 1, 1.0);
  s.c = Matrix(1, 3, 1.0);
  s.d = Matrix(1, 1);
  EXPECT_EQ(pencilIndex(s), 3u);
}

TEST(CircuitModels, PlainLadderIsImpulsiveAtPort) {
  // Port node has no shunt capacitor: Z(s) ~ s*l at infinity.
  circuits::LadderOptions opt;
  opt.sections = 3;
  DescriptorSystem sys = circuits::makeRlcLadder(opt);
  EXPECT_FALSE(isImpulseFree(sys));
  // Physical RLC: the impulsive mode is both controllable and observable
  // from the port.
  EXPECT_TRUE(isImpulseControllable(sys));
  EXPECT_TRUE(isImpulseObservable(sys));
}

TEST(CircuitModels, CapAtPortMakesImpulseFree) {
  circuits::LadderOptions opt;
  opt.sections = 3;
  opt.capAtPort = true;
  DescriptorSystem sys = circuits::makeRlcLadder(opt);
  EXPECT_TRUE(isImpulseFree(sys));
  ModeCensus mc = censusModes(sys);
  EXPECT_EQ(mc.impulsive, 0u);
  EXPECT_GT(mc.nondynamic, 0u);  // midnodes carry no capacitance
}

TEST(CircuitModels, ImpulsiveSectionsIncreaseImpulsiveCount) {
  circuits::LadderOptions opt;
  opt.sections = 9;
  opt.capAtPort = true;
  ModeCensus base = censusModes(circuits::makeRlcLadder(opt));
  opt.impulsiveEvery = 3;
  ModeCensus imp = censusModes(circuits::makeRlcLadder(opt));
  EXPECT_GT(imp.impulsive, base.impulsive);
}

TEST(CircuitModels, CensusAddsUp) {
  circuits::LadderOptions opt;
  opt.sections = 6;
  opt.impulsiveEvery = 2;
  ModeCensus mc = censusModes(circuits::makeRlcLadder(opt));
  EXPECT_EQ(mc.finite + mc.nondynamic + mc.impulsive, mc.order);
}

}  // namespace
}  // namespace shhpass::ds
