// Tests for the DescriptorSystem type: validation, transfer evaluation,
// adjoint, parallel sum, regularity and stability queries.
#include <gtest/gtest.h>

#include <cmath>

#include "ds/descriptor.hpp"
#include "ds/svd_coords.hpp"
#include "test_support.hpp"

namespace shhpass::ds {
namespace {

using linalg::Matrix;
using testing::expectMatrixNear;
using testing::randomMatrix;

// G(s) = 1/(s+1) as a (regular-E) descriptor system.
DescriptorSystem firstOrder() {
  DescriptorSystem s;
  s.e = Matrix{{1.0}};
  s.a = Matrix{{-1.0}};
  s.b = Matrix{{1.0}};
  s.c = Matrix{{1.0}};
  s.d = Matrix{{0.0}};
  return s;
}

// G(s) = s (a pure differentiator): E = [0 1; 0 0], A = I, b = e2, c = -e1.
// c (sE - A)^{-1} b with (sN - I)^{-1} = -(I + sN): G = -c.b - s c N b = s.
DescriptorSystem differentiator() {
  DescriptorSystem s;
  s.e = Matrix{{0.0, 1.0}, {0.0, 0.0}};
  s.a = Matrix::identity(2);
  s.b = Matrix{{0.0}, {1.0}};
  s.c = Matrix{{-1.0, 0.0}};
  s.d = Matrix{{0.0}};
  return s;
}

TEST(Descriptor, ValidateAcceptsConsistent) {
  EXPECT_NO_THROW(firstOrder().validate());
  EXPECT_EQ(firstOrder().order(), 1u);
  EXPECT_TRUE(firstOrder().isSquareSystem());
}

TEST(Descriptor, ValidateRejectsBadShapes) {
  DescriptorSystem s = firstOrder();
  s.b = Matrix(2, 1);
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = firstOrder();
  s.d = Matrix(2, 2);
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = firstOrder();
  s.e = Matrix(2, 2);
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(Descriptor, EvalTransferFirstOrder) {
  // G(j) = 1/(1+j) = (1-j)/2.
  TransferValue g = evalTransfer(firstOrder(), 0.0, 1.0);
  EXPECT_NEAR(g.re(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(g.im(0, 0), -0.5, 1e-12);
}

TEST(Descriptor, EvalTransferDifferentiator) {
  // G(s) = s at s = 2 + 3j.
  TransferValue g = evalTransfer(differentiator(), 2.0, 3.0);
  EXPECT_NEAR(g.re(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(g.im(0, 0), 3.0, 1e-12);
}

TEST(Descriptor, EvalTransferAtPoleThrows) {
  EXPECT_THROW(evalTransfer(firstOrder(), -1.0, 0.0), std::runtime_error);
}

TEST(Descriptor, AdjointFlipsFrequencyAndTransposes) {
  // G~(s) = G(-s)^T: for the first-order system, G~(j) = 1/(1-j).
  DescriptorSystem adj = adjoint(firstOrder());
  TransferValue g = evalTransfer(adj, 0.0, 1.0);
  EXPECT_NEAR(g.re(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(g.im(0, 0), 0.5, 1e-12);
}

TEST(Descriptor, AdjointOfMimoMatchesPointwise) {
  DescriptorSystem sys;
  const std::size_t n = 5;
  sys.e = Matrix::identity(n);
  sys.a = testing::randomStable(n, 501);
  sys.b = randomMatrix(n, 2, 502);
  sys.c = randomMatrix(2, n, 503);
  sys.d = randomMatrix(2, 2, 504);
  DescriptorSystem adj = adjoint(sys);
  const double w = 0.7;
  TransferValue gAdj = evalTransfer(adj, 0.3, w);
  TransferValue gNeg = evalTransfer(sys, -0.3, -w);
  expectMatrixNear(gAdj.re, gNeg.re.transposed(), 1e-10);
  expectMatrixNear(gAdj.im, gNeg.im.transposed(), 1e-10);
}

TEST(Descriptor, AddIsPointwiseSum) {
  DescriptorSystem g1 = firstOrder();
  DescriptorSystem g2 = differentiator();
  DescriptorSystem sum = add(g1, g2);
  EXPECT_EQ(sum.order(), 3u);
  TransferValue gs = evalTransfer(sum, 0.5, 2.0);
  TransferValue ga = evalTransfer(g1, 0.5, 2.0);
  TransferValue gb = evalTransfer(g2, 0.5, 2.0);
  expectMatrixNear(gs.re, ga.re + gb.re, 1e-11);
  expectMatrixNear(gs.im, ga.im + gb.im, 1e-11);
}

TEST(Descriptor, AddRejectsPortMismatch) {
  DescriptorSystem g1 = firstOrder();
  DescriptorSystem g2 = firstOrder();
  g2.b = Matrix(1, 2);
  g2.d = Matrix(1, 2);
  EXPECT_THROW(add(g1, g2), std::invalid_argument);
}

TEST(Descriptor, SumWithAdjointIsHermitianOnAxis) {
  // Phi(jw) = G(jw) + G(jw)^* is Hermitian: real part symmetric, imaginary
  // part skew — the structural fact the whole paper builds on.
  DescriptorSystem sys;
  const std::size_t n = 4;
  sys.e = Matrix::identity(n);
  sys.a = testing::randomStable(n, 505);
  sys.b = randomMatrix(n, 2, 506);
  sys.c = randomMatrix(2, n, 507);
  sys.d = randomMatrix(2, 2, 508);
  DescriptorSystem phi = add(sys, adjoint(sys));
  TransferValue p = evalTransfer(phi, 0.0, 1.3);
  EXPECT_TRUE(p.re.isSymmetric(1e-10));
  EXPECT_TRUE(p.im.isSkewSymmetric(1e-10));
}

TEST(Descriptor, RegularityQueries) {
  EXPECT_TRUE(isRegular(firstOrder()));
  EXPECT_TRUE(isRegular(differentiator()));
  DescriptorSystem sing = firstOrder();
  sing.e = Matrix{{0.0}};
  sing.a = Matrix{{0.0}};
  EXPECT_FALSE(isRegular(sing));
}

TEST(Descriptor, StableFiniteModes) {
  EXPECT_TRUE(hasStableFiniteModes(firstOrder()));
  // Differentiator has no finite modes at all: vacuously stable.
  EXPECT_TRUE(hasStableFiniteModes(differentiator()));
  DescriptorSystem unstable = firstOrder();
  unstable.a = Matrix{{1.0}};
  EXPECT_FALSE(hasStableFiniteModes(unstable));
}

TEST(Descriptor, PopovProbe) {
  // For G(s) = 1/(s+1): lambda_min(G+G^*) = 2 Re G(jw) = 2/(1+w^2).
  EXPECT_NEAR(popovMinEigenvalueDs(firstOrder(), 1.0), 1.0, 1e-10);
  EXPECT_NEAR(popovMinEigenvalueDs(firstOrder(), 0.0), 2.0, 1e-10);
}

TEST(SvdCoordsTest, PreservesTransferFunction) {
  DescriptorSystem sys = differentiator();
  SvdCoordinates sc = toSvdCoordinates(sys);
  EXPECT_EQ(sc.rankE, 1u);
  TransferValue g1 = evalTransfer(sys, 1.1, 0.4);
  TransferValue g2 = evalTransfer(sc.sys, 1.1, 0.4);
  expectMatrixNear(g1.re, g2.re, 1e-10);
  expectMatrixNear(g1.im, g2.im, 1e-10);
}

TEST(SvdCoordsTest, EBlockStructure) {
  DescriptorSystem sys;
  sys.e = Matrix{{0, 0, 0}, {0, 2, 0}, {0, 0, 0}};
  sys.a = Matrix::identity(3);
  sys.a(0, 0) = -1;
  sys.b = Matrix(3, 1, 1.0);
  sys.c = Matrix(1, 3, 1.0);
  sys.d = Matrix(1, 1);
  SvdCoordinates sc = toSvdCoordinates(sys);
  EXPECT_EQ(sc.rankE, 1u);
  // E' = diag(E11, 0) with E11 nonsingular.
  EXPECT_NEAR(std::abs(sc.sys.e(0, 0)), 2.0, 1e-12);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      if (i != 0 || j != 0) EXPECT_EQ(sc.sys.e(i, j), 0.0);
  // Blocks have conformal sizes.
  EXPECT_EQ(sc.a22().rows(), 2u);
  EXPECT_EQ(sc.b2().rows(), 2u);
  EXPECT_EQ(sc.c2().cols(), 2u);
}

TEST(SvdCoordsTest, OrthogonalTransforms) {
  DescriptorSystem sys = differentiator();
  SvdCoordinates sc = toSvdCoordinates(sys);
  testing::expectOrthonormalColumns(sc.u);
  testing::expectOrthonormalColumns(sc.v);
}

}  // namespace
}  // namespace shhpass::ds
