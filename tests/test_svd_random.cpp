// Seeded random-property harness for the SVD kernel layer (the rank
// oracle of every deflation decision in the pipeline), in the mold of
// test_schur_reorder_random.cpp for the reordering layer:
//
//   * 200+ seeded cases (tests/test_support.hpp Xorshift, so the inputs
//     are bit-reproducible across platforms) spanning graded, clustered,
//     and exactly rank-deficient spectra over square/tall/wide shapes,
//     plus the degenerate ones (k = 0 sides, 1 x n, zero matrices);
//   * for every case: U/V orthogonality at 1e-12, reconstruction
//     residual at 1e-13 * sigma_1 * max(m, n), descending non-negative
//     singular values, and — where the spectrum was planted — agreement
//     with the planted values;
//   * rank stability of the shared policy (rankFromSingularValues) under
//     relative tolerance perturbations of a few eps: a deflation
//     decision must not flip when the cutoff wobbles at roundoff level;
//   * the dispatch contract: SVD() below kSvdCrossover is BIT-IDENTICAL
//     to svdUnblocked (downstream seeded tests rely on it), and the
//     blocked kernel above the crossover agrees with the unblocked
//     oracle to backward-stable roundoff;
//   * thread-pool bit-determinism: the blocked kernel's gemm calls
//     inherit the blas.hpp contract, so the whole decomposition is
//     bit-identical for every setGemmThreads() setting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"
#include "test_support.hpp"

namespace shhpass::linalg {
namespace {

using testing::Xorshift;

Matrix xorshiftMatrix(std::size_t r, std::size_t c, Xorshift& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.uniform(-1.0, 1.0);
  return m;
}

bool bitIdentical(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         (a.rows() * a.cols() == 0 ||
          std::memcmp(a.data(), b.data(),
                      sizeof(double) * a.rows() * a.cols()) == 0);
}

// A = Q1 diag(sigma) Q2^T with Q1, Q2 seeded random orthonormal factors:
// a matrix whose singular values are exactly the planted |sigma| (up to
// the roundoff of the construction itself). Requires sigma.size() <=
// min(m, n).
Matrix withPlantedSpectrum(std::size_t m, std::size_t n,
                           const std::vector<double>& sigma, Xorshift& rng) {
  const std::size_t k = sigma.size();
  Matrix q1 = QR(xorshiftMatrix(m, k, rng)).thinQ();
  const Matrix q2 = QR(xorshiftMatrix(n, k, rng)).thinQ();
  for (std::size_t j = 0; j < k; ++j)
    for (std::size_t i = 0; i < m; ++i) q1(i, j) *= sigma[j];
  return abt(q1, q2);
}

// Full property check for one decomposition: shape contract, descending
// non-negative spectrum, orthonormal factors, reconstruction.
void expectValidSvd(const Matrix& a, const SVD& svd, const char* label) {
  const std::size_t m = a.rows(), n = a.cols();
  const std::size_t mn = std::min(m, n);
  const auto& s = svd.singularValues();
  ASSERT_EQ(s.size(), mn) << label;
  for (std::size_t j = 0; j < s.size(); ++j) {
    EXPECT_GE(s[j], 0.0) << label << " s[" << j << "]";
    if (j + 1 < s.size()) EXPECT_GE(s[j], s[j + 1]) << label << " order";
  }
  const double dim = static_cast<double>(std::max<std::size_t>(
      {m, n, std::size_t{1}}));
  // Orthogonality: max deviation of the Gram matrices from I.
  for (const Matrix* q : {&svd.u(), &svd.v()}) {
    if (q->cols() == 0) continue;
    Matrix gram = atb(*q, *q);
    for (std::size_t i = 0; i < gram.rows(); ++i) gram(i, i) -= 1.0;
    EXPECT_LE(gram.maxAbs(), 1e-12 * dim) << label << " orthogonality";
  }
  // Reconstruction: || U diag(s) V^T - A ||_max <= 1e-13 * sigma_1 * dim.
  if (mn > 0) {
    Matrix us = svd.u().block(0, 0, m, mn);
    for (std::size_t j = 0; j < mn; ++j)
      for (std::size_t i = 0; i < m; ++i) us(i, j) *= s[j];
    const Matrix rec = abt(us, svd.v().block(0, 0, n, mn));
    const double scale = std::max(s.front(), 1e-300);
    EXPECT_LE((rec - a).maxAbs(), 1e-13 * scale * dim)
        << label << " reconstruction";
  }
}

// ------------------------------------------------------- property sweep

// 168 seeded cases over mixed shapes and spectra; every case goes through
// the dispatching constructor (so both kernels are exercised across the
// crossover boundary elsewhere; these stay small and fast).
TEST(SvdRandom, PropertySweepAcrossShapesAndSpectra) {
  Xorshift rng(0x5d5d0001ull);
  int planted = 0;
  for (int cse = 0; cse < 168; ++cse) {
    const std::size_t m = 1 + rng.pick(48);
    const std::size_t n = 1 + rng.pick(48);
    const std::size_t mn = std::min(m, n);
    const int kind = cse % 4;
    Matrix a;
    std::vector<double> expect;  // planted spectrum, descending
    switch (kind) {
      case 0:  // dense uniform (full rank w.p. 1)
        a = xorshiftMatrix(m, n, rng);
        break;
      case 1: {  // graded: sigma_j = 10^(-6 j / k), condition up to 1e6
        std::vector<double> sig(mn);
        for (std::size_t j = 0; j < mn; ++j)
          sig[j] = std::pow(10.0, -6.0 * static_cast<double>(j) /
                                      std::max<std::size_t>(mn, 2));
        a = withPlantedSpectrum(m, n, sig, rng);
        expect = sig;
        break;
      }
      case 2: {  // clustered: few distinct values, heavy multiplicity
        std::vector<double> sig(mn);
        const double levels[3] = {2.0, 1.0 + 1e-9, 1e-4};
        for (std::size_t j = 0; j < mn; ++j) sig[j] = levels[(3 * j) / mn];
        a = withPlantedSpectrum(m, n, sig, rng);
        expect = sig;
        break;
      }
      default: {  // exactly rank-deficient: r planted values, rest zero
        const std::size_t r = rng.pick(mn + 1);
        std::vector<double> sig(r);
        for (std::size_t j = 0; j < r; ++j) sig[j] = rng.uniform(0.5, 2.0);
        std::sort(sig.rbegin(), sig.rend());
        a = r == 0 ? Matrix::zeros(m, n)
                   : withPlantedSpectrum(m, n, sig, rng);
        expect = sig;
        expect.resize(mn, 0.0);
        break;
      }
    }
    SVD svd(a);
    expectValidSvd(a, svd, "sweep");
    if (!expect.empty()) {
      ++planted;
      std::sort(expect.rbegin(), expect.rend());
      const double dim = static_cast<double>(std::max(m, n));
      const double scale = std::max(1.0, expect.front());
      for (std::size_t j = 0; j < expect.size(); ++j)
        EXPECT_NEAR(svd.singularValues()[j], expect[j], 1e-12 * scale * dim)
            << "case " << cse << " sigma[" << j << "]";
    }
  }
  EXPECT_GE(planted, 100);  // most of the sweep pins exact spectra
}

TEST(SvdRandom, DegenerateShapes) {
  Xorshift rng(0x5d5d0002ull);
  // Zero-extent sides (k = 0): identity factors, empty spectrum.
  for (auto [m, n] : {std::pair<std::size_t, std::size_t>{5, 0},
                      {0, 7},
                      {0, 0}}) {
    SVD svd(Matrix(m, n));
    EXPECT_TRUE(svd.singularValues().empty());
    EXPECT_EQ(svd.rank(), 0u);
    EXPECT_EQ(svd.u().rows(), m);
    EXPECT_EQ(svd.v().rows(), n);
  }
  // Zero matrices of nonzero extent: rank 0, exact zero spectrum.
  for (auto [m, n] : {std::pair<std::size_t, std::size_t>{4, 6}, {6, 4}}) {
    SVD svd(Matrix::zeros(m, n));
    expectValidSvd(Matrix::zeros(m, n), svd, "zero");
    EXPECT_EQ(svd.rank(), 0u);
  }
  // Row and column vectors: sigma_1 is the Euclidean norm.
  for (int rep = 0; rep < 12; ++rep) {
    const std::size_t n = 1 + rng.pick(40);
    Matrix row = xorshiftMatrix(1, n, rng);
    Matrix col = xorshiftMatrix(n, 1, rng);
    SVD sr(row), sc(col);
    expectValidSvd(row, sr, "1xn");
    expectValidSvd(col, sc, "nx1");
    EXPECT_NEAR(sr.singularValues()[0], row.normFrobenius(), 1e-13 * n);
    EXPECT_NEAR(sc.singularValues()[0], col.normFrobenius(), 1e-13 * n);
  }
  // 1 x 1 down to scalars.
  SVD s1(Matrix{{-3.25}});
  EXPECT_NEAR(s1.singularValues()[0], 3.25, 1e-15);
  EXPECT_EQ(s1.rank(), 1u);
}

// ------------------------------------------- shared rank-policy contract

// A deflation decision must be stable when the cutoff wobbles by a few
// eps: the planted spectra leave a wide gap around the default tolerance,
// and rankFromSingularValues must return the same count for tol * (1 -
// d) and tol * (1 + d) with d at roundoff level. Also pins the policy
// identities rank == #"sigma > tol" and the recorded margins.
TEST(SvdRandom, RankStableUnderToleranceRoundoffPerturbation) {
  Xorshift rng(0x5d5d0003ull);
  for (int cse = 0; cse < 40; ++cse) {
    const std::size_t m = 4 + rng.pick(40);
    const std::size_t n = 4 + rng.pick(40);
    const std::size_t mn = std::min(m, n);
    const std::size_t r = rng.pick(mn + 1);
    std::vector<double> sig(r);
    for (std::size_t j = 0; j < r; ++j) sig[j] = rng.uniform(0.25, 4.0);
    std::sort(sig.rbegin(), sig.rend());
    const Matrix a =
        r == 0 ? Matrix::zeros(m, n) : withPlantedSpectrum(m, n, sig, rng);
    SVD svd(a);
    EXPECT_EQ(svd.rank(), r) << "case " << cse;
    const double tol = svd.defaultTol();
    for (double wobble : {1.0 - 4e-15, 1.0 + 4e-15, 1.0 - 1e-13,
                          1.0 + 1e-13}) {
      EXPECT_EQ(svd.rank(tol * wobble), r)
          << "case " << cse << " wobble " << wobble;
    }
    // The free-function policy and the member agree by construction.
    EXPECT_EQ(rankFromSingularValues(svd.singularValues(), m, n), r);

    // Recorded margins straddle 1 from the right sides of the cutoff.
    RankReport report;
    rankFromSingularValues(svd.singularValues(), m, n, -1.0, &report);
    EXPECT_EQ(report.decisions, 1u);
    if (r > 0) EXPECT_GT(report.minKeptMargin, 1.0);
    if (r < mn) EXPECT_LT(report.maxDroppedMargin, 1.0);
  }
}

// An explicitly planted near-cutoff value: the policy keeps sigma > tol
// strictly, drops sigma <= tol, and the report margins expose how sharp
// the decision was.
TEST(SvdRandom, ExplicitToleranceBoundaryContract) {
  Xorshift rng(0x5d5d0004ull);
  const std::vector<double> sig = {1.0, 1e-6 * (1.0 + 1e-3), 1e-6, 1e-12};
  const Matrix a = withPlantedSpectrum(30, 24, sig, rng);
  SVD svd(a);
  // Cutoff exactly at the planted 1e-6: the equal value must be DROPPED
  // (strict >), the (1 + 1e-3)-inflated one kept... except roundoff makes
  // "exactly" unattainable, so probe both sides of the computed value.
  const double s2 = svd.singularValues()[2];
  EXPECT_NEAR(s2, 1e-6, 1e-12);
  EXPECT_EQ(svd.rank(std::nextafter(s2, 0.0)), 3u);  // just below: kept
  EXPECT_EQ(svd.rank(s2), 2u);                       // equal: dropped
  RankReport report;
  svd.rank(1e-6 * (1.0 + 5e-4), &report);
  EXPECT_EQ(report.decisions, 1u);
  // Sharp decision: kept margin barely above 1, dropped barely below.
  EXPECT_LT(report.minKeptMargin, 1.001);
  EXPECT_GT(report.maxDroppedMargin, 0.999);
}

// ------------------------------------------------------ kernel contracts

TEST(SvdRandom, DispatchBitIdenticalToUnblockedBelowCrossover) {
  Xorshift rng(0x5d5d0005ull);
  for (int cse = 0; cse < 24; ++cse) {
    const std::size_t m = 1 + rng.pick(kSvdCrossover - 1);
    const std::size_t n = 1 + rng.pick(kSvdCrossover - 1);
    const Matrix a = xorshiftMatrix(m, n, rng);
    const SVD dispatched(a);
    const SVD reference = svdUnblocked(a);
    EXPECT_EQ(dispatched.singularValues(), reference.singularValues())
        << m << "x" << n;
    EXPECT_TRUE(bitIdentical(dispatched.u(), reference.u())) << m << "x" << n;
    EXPECT_TRUE(bitIdentical(dispatched.v(), reference.v())) << m << "x" << n;
  }
}

TEST(SvdRandom, BlockedAgreesWithUnblockedOracleAboveCrossover) {
  Xorshift rng(0x5d5d0006ull);
  // Sizes chosen to straddle panel boundaries: exact multiple of the
  // panel, one off, and a ragged tail; tall and wide variants.
  const std::pair<std::size_t, std::size_t> shapes[] = {
      {kSvdCrossover, kSvdCrossover},
      {kSvdCrossover + 1, kSvdCrossover + 1},
      {4 * kSvdPanel + 7, 4 * kSvdPanel + 3},
      {kSvdCrossover + 40, kSvdCrossover},
      {kSvdCrossover, kSvdCrossover + 40}};
  for (const auto& [m, n] : shapes) {
    const Matrix a = xorshiftMatrix(m, n, rng);
    const SVD blocked(a);  // dispatch takes the blocked path here
    const SVD reference = svdUnblocked(a);
    expectValidSvd(a, blocked, "blocked");
    const double dim = static_cast<double>(std::max(m, n));
    const auto& sb = blocked.singularValues();
    const auto& su = reference.singularValues();
    ASSERT_EQ(sb.size(), su.size());
    for (std::size_t j = 0; j < sb.size(); ++j)
      EXPECT_NEAR(sb[j], su[j], 1e-12 * dim * std::max(1.0, su.front()))
          << m << "x" << n << " sigma[" << j << "]";
    // Same rank decisions through the shared policy.
    EXPECT_EQ(blocked.rank(), reference.rank());
  }
}

// Restores serial kernels even when a test fails mid-body.
struct GemmThreadsGuard {
  ~GemmThreadsGuard() { setGemmThreads(1); }
};

TEST(SvdRandom, BlockedBitDeterministicUnderThreadPool) {
  // The blocked path's BLAS-3 bulk goes through gemm(), whose threading
  // contract (blas.hpp) promises bit-identical results for every thread
  // count. n is chosen so the leading trailing-update gemms clear
  // kGemmThreadedFlopFloor and the pool genuinely fans out.
  GemmThreadsGuard guard;
  Xorshift rng(0x5d5d0007ull);
  const std::size_t n = 520;
  const Matrix a = xorshiftMatrix(n, n, rng);
  ASSERT_GE((n - kSvdPanel) * kSvdPanel * (n - kSvdPanel),
            kGemmThreadedFlopFloor);

  setGemmThreads(1);
  const SVD serial(a);
  expectValidSvd(a, serial, "threaded-serial");
  for (std::size_t threads : {2u, 3u, 7u}) {
    setGemmThreads(threads);
    EXPECT_EQ(gemmThreads(), threads);
    const SVD run1(a);
    const SVD run2(a);
    EXPECT_EQ(run1.singularValues(), serial.singularValues())
        << threads << " threads vs serial";
    EXPECT_TRUE(bitIdentical(run1.u(), serial.u())) << threads << " threads";
    EXPECT_TRUE(bitIdentical(run1.v(), serial.v())) << threads << " threads";
    EXPECT_TRUE(bitIdentical(run1.u(), run2.u())) << threads << " rerun";
    EXPECT_TRUE(bitIdentical(run1.v(), run2.v())) << threads << " rerun";
  }
}

}  // namespace
}  // namespace shhpass::linalg
