// Tests for the regular-system positive-realness test and the ARE solvers.
#include <gtest/gtest.h>

#include "control/are.hpp"
#include "control/pr_test.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "test_support.hpp"

namespace shhpass::control {
namespace {

using linalg::Matrix;
using testing::expectMatrixNear;
using testing::randomMatrix;
using testing::randomStable;

// A canonical passive RC one-port: G(s) = 1/(s+1) + r0.
struct Rc1 {
  Matrix a{{-1.0}};
  Matrix b{{1.0}};
  Matrix c{{1.0}};
  Matrix d{{0.5}};
};

TEST(PrTest, PassiveFirstOrderIsPr) {
  Rc1 sys;
  PrTestResult r = testPositiveRealProper(sys.a, sys.b, sys.c, sys.d);
  EXPECT_TRUE(r.stable);
  EXPECT_TRUE(r.positiveReal);
  EXPECT_TRUE(r.usedHamiltonian);
}

TEST(PrTest, NegatedSystemIsNotPr) {
  Rc1 sys;
  PrTestResult r =
      testPositiveRealProper(sys.a, sys.b, -1.0 * sys.c, -1.0 * sys.d);
  EXPECT_FALSE(r.positiveReal);
}

TEST(PrTest, UnstableSystemFails) {
  PrTestResult r = testPositiveRealProper(Matrix{{1.0}}, Matrix{{1.0}},
                                          Matrix{{1.0}}, Matrix{{1.0}});
  EXPECT_FALSE(r.stable);
  EXPECT_FALSE(r.positiveReal);
}

TEST(PrTest, IndefiniteFeedthroughFails) {
  // D + D^T indefinite => G(j inf) + G^* not PSD => not PR.
  Matrix a = randomStable(3, 401);
  Matrix b = randomMatrix(3, 2, 402);
  Matrix c = randomMatrix(2, 3, 403);
  Matrix d{{-1.0, 0.0}, {0.0, 1.0}};
  EXPECT_FALSE(testPositiveRealProper(a, b, c, d).positiveReal);
}

TEST(PrTest, StaticSystem) {
  Matrix empty;
  EXPECT_TRUE(testPositiveRealProper(empty, Matrix(0, 1), Matrix(1, 0),
                                     Matrix{{2.0}})
                  .positiveReal);
  EXPECT_FALSE(testPositiveRealProper(empty, Matrix(0, 1), Matrix(1, 0),
                                      Matrix{{-2.0}})
                   .positiveReal);
}

TEST(PrTest, LosslessLcTankViaSampling) {
  // G(s) = s/(s^2+1) is lossless positive real but not stable in the strict
  // Hurwitz sense (poles on the axis) — our test requires stability, so it
  // reports failure through the stability gate. Shift the poles slightly:
  // G(s) = s / (s^2 + 0.01 s + 1) is PR with D = 0 (singular R path).
  Matrix a{{-0.01, -1.0}, {1.0, 0.0}};
  Matrix b{{1.0}, {0.0}};
  Matrix c{{1.0, 0.0}};
  Matrix d{{0.0}};
  PrTestResult r = testPositiveRealProper(a, b, c, d);
  EXPECT_TRUE(r.stable);
  EXPECT_TRUE(r.usedSampling);
  EXPECT_TRUE(r.positiveReal);
}

TEST(PrTest, BandStopNegativeRealPartDetected) {
  // G(s) = (s^2 - s + 1)/(s^2 + s + 1) has |G| = 1 but Re G(jw) < 0 near
  // w = 1 (an all-pass-like non-PR example); D = 1 so R nonsingular.
  Matrix a{{-1.0, -1.0}, {1.0, 0.0}};
  Matrix b{{1.0}, {0.0}};
  Matrix c{{-2.0, 0.0}};
  Matrix d{{1.0}};
  PrTestResult r = testPositiveRealProper(a, b, c, d);
  EXPECT_TRUE(r.stable);
  EXPECT_FALSE(r.positiveReal);
}

TEST(PopovEigenvalue, MatchesHandComputation) {
  // G(s) = 1/(s+1): Re G(jw) = 1/(1+w^2); lambda_min(G+G^*) = 2/(1+w^2).
  Rc1 sys;
  const double at0 = popovMinEigenvalue(sys.a, sys.b, sys.c, sys.d, 0.0);
  EXPECT_NEAR(at0, 2.0 * (0.5 + 1.0), 1e-10);
  const double at1 = popovMinEigenvalue(sys.a, sys.b, sys.c, sys.d, 1.0);
  EXPECT_NEAR(at1, 2.0 * (0.5 + 0.5), 1e-10);
}

TEST(Care, SolvesKnownScalar) {
  // a=1? use: A^T X + X A - X G X + Q = 0 with A=-1, G=1, Q=3:
  // -2x - x^2 + 3 = 0 -> x = 1 (stabilizing).
  AreResult r = solveCare(Matrix{{-1.0}}, Matrix{{1.0}}, Matrix{{3.0}});
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.x(0, 0), 1.0, 1e-10);
}

TEST(Care, ResidualRandom) {
  const std::size_t n = 5;
  Matrix a = randomStable(n, 404);
  Matrix b = randomMatrix(n, 2, 405);
  Matrix g = linalg::abt(b, b);
  Matrix cm = randomMatrix(2, n, 406);
  Matrix q = linalg::atb(cm, cm);
  AreResult r = solveCare(a, g, q);
  ASSERT_TRUE(r.ok);
  Matrix resid =
      linalg::atb(a, r.x) + r.x * a - r.x * g * r.x + q;
  EXPECT_LT(resid.maxAbs(), 1e-7 * std::max(1.0, q.maxAbs()));
  EXPECT_TRUE(r.x.isSymmetric(1e-9 * std::max(1.0, r.x.maxAbs())));
}

TEST(PositiveRealAre, ResidualForPassiveSystem) {
  Rc1 sys;
  AreResult r = solvePositiveRealAre(sys.a, sys.b, sys.c, sys.d);
  ASSERT_TRUE(r.ok);
  // Check Eq. (5) residual directly.
  Matrix rmat = sys.d + sys.d.transposed();
  Matrix term = (r.x * sys.b - sys.c.transposed());
  Matrix resid = linalg::atb(sys.a, r.x) + r.x * sys.a +
                 term * linalg::solve(rmat, (sys.b.transposed() * r.x -
                                             sys.c));
  EXPECT_LT(resid.maxAbs(), 1e-9);
  // Stabilizing solution of the PR Riccati is PSD for passive systems.
  EXPECT_TRUE(linalg::isPositiveSemidefinite(r.x));
}

TEST(PositiveRealAre, FailsForNonPassive) {
  Rc1 sys;
  AreResult r =
      solvePositiveRealAre(sys.a, sys.b, -1.0 * sys.c, Matrix{{0.1}});
  EXPECT_FALSE(r.ok);
}

TEST(PositiveRealAre, SingularRThrows) {
  Rc1 sys;
  EXPECT_THROW(solvePositiveRealAre(sys.a, sys.b, sys.c, Matrix{{0.0}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace shhpass::control
