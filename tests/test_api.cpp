// Tests of the unified public API: the Status/Result error model and its
// FailureStage mapping, the stage-pipeline engine, the analyzer facade
// (error paths, JSON reports), and batch/sequential agreement.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "api/shhpass.hpp"
#include "linalg/schur_multishift.hpp"
#include "test_support.hpp"

namespace shhpass::api {
namespace {

using linalg::Matrix;

// ------------------------------------------------------------ Status model

TEST(ApiStatus, EveryFailureStageMapsToADistinctCode) {
  const core::FailureStage stages[] = {
      core::FailureStage::None,
      core::FailureStage::NotSquare,
      core::FailureStage::SingularPencil,
      core::FailureStage::UnstableFiniteModes,
      core::FailureStage::ResidualImpulses,
      core::FailureStage::HigherOrderImpulse,
      core::FailureStage::M1NotPsd,
      core::FailureStage::LosslessAxisModes,
      core::FailureStage::ProperPartNotPr,
  };
  std::vector<ErrorCode> seen;
  for (core::FailureStage s : stages) {
    const ErrorCode code = errorCodeFromFailureStage(s);
    // Distinct codes per stage.
    for (ErrorCode prior : seen) EXPECT_NE(code, prior);
    seen.push_back(code);
    // Round trip.
    auto back = failureStageFromErrorCode(code);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, s);
    // Verdict classification: every stage except None is a verdict code.
    EXPECT_EQ(isVerdictCode(code), s != core::FailureStage::None);
    // Codes have stable names.
    EXPECT_STRNE(errorCodeName(code), "UNKNOWN");
  }
}

TEST(ApiStatus, OperationalErrorsAreNotVerdictsAndHaveNoStage) {
  for (ErrorCode code :
       {ErrorCode::InvalidArgument, ErrorCode::NumericalFailure,
        ErrorCode::SchurNoConvergence, ErrorCode::NetlistParseError,
        ErrorCode::Internal}) {
    EXPECT_FALSE(isVerdictCode(code));
    EXPECT_FALSE(failureStageFromErrorCode(code).has_value());
  }
}

// ------------------------------------------------------- netlist ingestion

TEST(ApiIngest, ParseFailureMapsToNetlistParseErrorWithDiagnostics) {
  // Two defects on known lines: both typed diagnostics must survive the
  // Status mapping, line numbers included.
  Result<LoadedNetlist> r = parseNetlist(
      "R1 1 0 5\n"
      "C1 1 0 bogus\n"
      "R2 2 2 4\n"
      ".port 1\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::NetlistParseError);
  EXPECT_STREQ(errorCodeName(r.status().code()), "NETLIST_PARSE_ERROR");
  const std::string& msg = r.status().message();
  EXPECT_NE(msg.find("line 2: [BAD_VALUE]"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 3: [SHORTED_ELEMENT]"), std::string::npos) << msg;
}

TEST(ApiIngest, UnreadableFileMapsToNetlistParseError) {
  Result<LoadedNetlist> r = loadNetlist("/nonexistent/shhpass.cir");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::NetlistParseError);
  EXPECT_NE(r.status().message().find("[FILE_ERROR]"), std::string::npos);
}

TEST(ApiIngest, ParseStampAnalyzeEndToEnd) {
  Result<LoadedNetlist> loaded = parseNetlist(
      "* quickstart one-port\n"
      "L1 1 2 0.5\n"
      "C1 2 0 0.25\n"
      "R1 2 0 2\n"
      ".port 1\n");
  ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
  Result<ds::DescriptorSystem> sys = stampNetlist(loaded->netlist);
  ASSERT_TRUE(sys.ok()) << sys.status().toString();
  const PassivityAnalyzer analyzer;
  Result<AnalysisReport> report = analyzer.analyze(*sys);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->passive);
  EXPECT_NEAR(report->m1(0, 0), 0.5, 1e-10);  // M1 = L
}

TEST(ApiIngest, BuilderValidationSurfacesAsTypedStatus) {
  // The raw Netlist builder throws std::invalid_argument; through the
  // API boundary every validation failure is a typed Status instead.
  Result<circuits::Netlist> shorted = buildNetlist(
      2, [](circuits::Netlist& net) { net.addResistor(1, 1, 5.0); });
  ASSERT_FALSE(shorted.ok());
  EXPECT_EQ(shorted.status().code(), ErrorCode::InvalidArgument);
  EXPECT_NE(shorted.status().message().find("shorted"), std::string::npos);

  Result<circuits::Netlist> zeroValued = buildNetlist(
      2, [](circuits::Netlist& net) { net.addCapacitor(1, 0, 0.0); });
  ASSERT_FALSE(zeroValued.ok());
  EXPECT_EQ(zeroValued.status().code(), ErrorCode::InvalidArgument);

  Result<circuits::Netlist> badPort =
      buildNetlist(2, [](circuits::Netlist& net) {
        net.addResistor(1, 0, 1.0);
        net.addPort(7);
      });
  ASSERT_FALSE(badPort.ok());
  EXPECT_EQ(badPort.status().code(), ErrorCode::InvalidArgument);

  Result<circuits::Netlist> badSetValue =
      buildNetlist(2, [](circuits::Netlist& net) {
        net.addResistor(1, 0, 1.0);
        net.setComponentValue(0, 0.0);
      });
  ASSERT_FALSE(badSetValue.ok());
  EXPECT_EQ(badSetValue.status().code(), ErrorCode::InvalidArgument);

  Result<circuits::Netlist> good = buildNetlist(2, [](circuits::Netlist& n) {
    n.addInductor(1, 2, 0.5).addCapacitor(2, 0, 0.25).addResistor(2, 0, 2.0);
    n.addPort(1);
  });
  ASSERT_TRUE(good.ok()) << good.status().toString();
  EXPECT_EQ(good->components().size(), 3u);
}

TEST(ApiIngest, StampingAPortlessNetlistIsTypedNotThrown) {
  Result<circuits::Netlist> net = buildNetlist(
      2, [](circuits::Netlist& n) { n.addResistor(1, 2, 1.0); });
  ASSERT_TRUE(net.ok());
  Result<ds::DescriptorSystem> sys = stampNetlist(*net);
  ASSERT_FALSE(sys.ok());
  EXPECT_EQ(sys.status().code(), ErrorCode::InvalidArgument);
  EXPECT_NE(sys.status().message().find("no ports"), std::string::npos);
}

TEST(ApiStatus, SchurNonConvergenceMapsToTypedCode) {
  // The 30-iteration non-convergence throw of the QR eigensolvers is a
  // typed exception since the multishift PR; the exception translator
  // must map it to SCHUR_NO_CONVERGENCE, not swallow it into the generic
  // runtime_error -> NUMERICAL_FAILURE bucket.
  Status st;
  try {
    throw linalg::SchurConvergenceError("iteration budget exhausted");
  } catch (...) {
    st = statusFromCurrentException();
  }
  EXPECT_EQ(st.code(), ErrorCode::SchurNoConvergence);
  EXPECT_STREQ(errorCodeName(st.code()), "SCHUR_NO_CONVERGENCE");
  EXPECT_EQ(st.toString(),
            "SCHUR_NO_CONVERGENCE: iteration budget exhausted");
  // Plain runtime errors still map to NUMERICAL_FAILURE.
  try {
    throw std::runtime_error("some other kernel breakdown");
  } catch (...) {
    st = statusFromCurrentException();
  }
  EXPECT_EQ(st.code(), ErrorCode::NumericalFailure);
}

TEST(ApiStatus, StatusBasics) {
  Status ok = Status::okStatus();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.toString(), "OK");

  Status err = Status::error(ErrorCode::InvalidArgument, "bad shape");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), ErrorCode::InvalidArgument);
  EXPECT_EQ(err.toString(), "INVALID_ARGUMENT: bad shape");
}

TEST(ApiStatus, ResultHoldsValueOrStatus) {
  Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);

  Result<int> bad(Status::error(ErrorCode::Internal, "boom"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), ErrorCode::Internal);
}

// --------------------------------------------------------------- error paths

TEST(ApiAnalyzer, NonSquareSystemIsANotSquareVerdict) {
  // 1 input, 2 outputs: structurally consistent but not square, so the
  // Fig.-1 flow itself rejects it (power interpretation needs m_in = m_out).
  ds::DescriptorSystem g;
  g.e = Matrix::identity(2);
  g.a = -1.0 * Matrix::identity(2);
  g.b = Matrix(2, 1);
  g.b(0, 0) = 1.0;
  g.c = Matrix::identity(2);
  g.d = Matrix(2, 1);

  PassivityAnalyzer analyzer;
  Result<AnalysisReport> r = analyzer.analyze(g);
  ASSERT_TRUE(r.ok()) << r.status().toString();
  EXPECT_FALSE(r->passive);
  EXPECT_EQ(r->verdict, ErrorCode::NotSquare);
  EXPECT_EQ(r->failure, core::FailureStage::NotSquare);
  // The pipeline stopped in the prerequisites stage.
  ASSERT_EQ(r->stages.size(), 1u);
  EXPECT_EQ(r->stages[0].name, "prerequisites");
  EXPECT_EQ(r->stages[0].status.code(), ErrorCode::NotSquare);
}

TEST(ApiAnalyzer, MalformedSystemIsAnInvalidArgumentError) {
  // B has the wrong row count: validate() rejects the block shapes. The
  // legacy API threw std::invalid_argument; the public API must return a
  // Status instead of leaking the exception.
  ds::DescriptorSystem g;
  g.e = Matrix::identity(3);
  g.a = -1.0 * Matrix::identity(3);
  g.b = Matrix(2, 1);  // wrong: must be 3 x m
  g.c = Matrix(1, 3);
  g.d = Matrix(1, 1);

  PassivityAnalyzer analyzer;
  Result<AnalysisReport> r = analyzer.analyze(g);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::InvalidArgument);
  EXPECT_FALSE(r.status().message().empty());
}

// ------------------------------------------------- verdict codes end-to-end

TEST(ApiAnalyzer, NonPassiveMutantsGetTheExpectedVerdicts) {
  PassivityAnalyzer analyzer;

  Result<AnalysisReport> m1 =
      analyzer.analyze(circuits::makeNonPassiveIndefiniteM1());
  ASSERT_TRUE(m1.ok()) << m1.status().toString();
  EXPECT_FALSE(m1->passive);
  EXPECT_EQ(m1->verdict, ErrorCode::M1NotPsd);

  Result<AnalysisReport> pr =
      analyzer.analyze(circuits::makeNonPassiveNegativeFeedthrough(4));
  ASSERT_TRUE(pr.ok()) << pr.status().toString();
  EXPECT_FALSE(pr->passive);
  EXPECT_EQ(pr->verdict, ErrorCode::ProperPartNotPr);
}

TEST(ApiAnalyzer, ReportAgreesWithLegacyShim) {
  circuits::LadderOptions opt;
  opt.sections = 4;
  opt.capAtPort = false;  // impulsive: M1 = l at the port
  ds::DescriptorSystem g = circuits::makeRlcLadder(opt);

  PassivityAnalyzer analyzer;
  Result<AnalysisReport> r = analyzer.analyze(g);
  ASSERT_TRUE(r.ok()) << r.status().toString();
  core::PassivityResult legacy = core::testPassivityShh(g);

  EXPECT_EQ(r->passive, legacy.passive);
  EXPECT_EQ(r->failure, legacy.failure);
  EXPECT_EQ(r->removedImpulsive, legacy.removedImpulsive);
  EXPECT_EQ(r->removedNondynamic, legacy.removedNondynamic);
  EXPECT_EQ(r->impulsiveChains, legacy.impulsiveChains);
  testing::expectMatrixNear(r->m1, legacy.m1, 0.0);
}

// ----------------------------------------------------------------- pipeline

TEST(ApiPipeline, TracesCoverAllStagesOnAPassiveRun) {
  circuits::LadderOptions opt;
  opt.sections = 3;
  opt.capAtPort = true;
  ds::DescriptorSystem g = circuits::makeRlcLadder(opt);

  const Pipeline pipeline = Pipeline::standard();
  ASSERT_EQ(pipeline.stages().size(), 7u);

  PipelineState state;
  state.input = &g;
  std::vector<StageTrace> traces;
  std::size_t observed = 0;
  Status status = pipeline.run(state, &traces,
                               [&](const StageTrace&) { ++observed; });
  EXPECT_TRUE(status.ok()) << status.toString();
  EXPECT_TRUE(state.result.passive);
  ASSERT_EQ(traces.size(), 7u);
  EXPECT_EQ(observed, 7u);
  const char* expected[] = {"prerequisites",      "build-phi",
                            "impulse-deflation",  "nondynamic-removal",
                            "m1-extraction",      "proper-part",
                            "pr-test"};
  for (std::size_t i = 0; i < traces.size(); ++i) {
    EXPECT_EQ(traces[i].name, expected[i]);
    EXPECT_TRUE(traces[i].status.ok());
    EXPECT_GE(traces[i].seconds, 0.0);
  }
}

TEST(ApiPipeline, NullInputIsAnInvalidArgumentNotACrash) {
  PipelineState state;  // input left null
  Status status = standardPipeline().run(state);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::InvalidArgument);
}

TEST(ApiPipeline, VerdictStopsThePipelineEarly) {
  ds::DescriptorSystem g = circuits::makeNonPassiveIndefiniteM1();
  const Pipeline pipeline = Pipeline::standard();
  PipelineState state;
  state.input = &g;
  std::vector<StageTrace> traces;
  Status status = pipeline.run(state, &traces);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(isVerdictCode(status.code()));
  EXPECT_EQ(status.code(), ErrorCode::M1NotPsd);
  // m1-extraction is stage 5 of 7; the last two stages never ran.
  EXPECT_EQ(traces.size(), 5u);
  EXPECT_EQ(traces.back().name, "m1-extraction");
}

// --------------------------------------------------------------------- JSON

TEST(ApiJson, WriterEscapesAndNests) {
  json::Writer w;
  w.beginObject();
  w.key("s").value("a\"b\\c\nd");
  w.key("n").value(std::size_t{3});
  w.key("b").value(true);
  w.key("arr").beginArray().value(1.5).value(false).endArray();
  w.endObject();
  EXPECT_EQ(w.str(),
            "{\"s\":\"a\\\"b\\\\c\\nd\",\"n\":3,\"b\":true,"
            "\"arr\":[1.5,false]}");
}

TEST(ApiJson, ReportSerializesTheDecisionPath) {
  circuits::LadderOptions opt;
  opt.sections = 3;
  opt.capAtPort = false;
  PassivityAnalyzer analyzer;
  Result<AnalysisReport> r = analyzer.analyze(circuits::makeRlcLadder(opt));
  ASSERT_TRUE(r.ok()) << r.status().toString();
  const std::string doc = r->toJson();
  EXPECT_NE(doc.find("\"passive\":true"), std::string::npos);
  EXPECT_NE(doc.find("\"verdict\":\"OK\""), std::string::npos);
  EXPECT_NE(doc.find("\"stages\":["), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"pr-test\""), std::string::npos);
  EXPECT_NE(doc.find("\"m1\":[["), std::string::npos);
}

TEST(ApiJson, ReportCarriesReorderHealth) {
  // The reorder health of the Eq.-(22) Schur split is part of the decision
  // path: swap/reject counts and residual bounds must appear in the JSON,
  // and a clean run carries no warnings.
  PassivityAnalyzer analyzer;
  Result<AnalysisReport> r =
      analyzer.analyze(circuits::makeBenchmarkModel(25, true));
  ASSERT_TRUE(r.ok()) << r.status().toString();
  EXPECT_TRUE(r->passive);
  EXPECT_GT(r->reorder.swaps, 0u);
  EXPECT_EQ(r->reorder.rejectedSwaps, 0u);
  EXPECT_TRUE(r->warnings.empty());
  const std::string doc = r->toJson();
  EXPECT_NE(doc.find("\"reorder\":{\"swaps\":"), std::string::npos);
  EXPECT_NE(doc.find("\"rejectedSwaps\":0"), std::string::npos);
  EXPECT_NE(doc.find("\"maxResidual\":"), std::string::npos);
  EXPECT_NE(doc.find("\"eigenvalueDrift\":"), std::string::npos);
  EXPECT_NE(doc.find("\"warnings\":[]"), std::string::npos);
  EXPECT_STREQ(api::warningName(Warning::ReorderSwapRejected),
               "REORDER_SWAP_REJECTED");
}

// -------------------------------------------------------------------- batch

TEST(ApiBatch, MixedBatchMatchesSequentialSingleShot) {
  // A mixed set: passive ladders (impulse-free and impulsive), a random
  // RLC network, and non-passive mutants of three different kinds, so the
  // batch exercises several verdict paths concurrently.
  std::vector<AnalysisRequest> batch;
  for (std::size_t k = 0; k < 4; ++k) {
    circuits::LadderOptions opt;
    opt.sections = 3 + k;
    opt.capAtPort = (k % 2 == 0);
    AnalysisRequest req;
    req.id = "ladder-" + std::to_string(k);
    req.system = circuits::makeRlcLadder(opt);
    batch.push_back(std::move(req));
  }
  {
    AnalysisRequest req;
    req.id = "random-net";
    req.system = circuits::makeRandomRlcNetwork(6, /*seed=*/17);
    batch.push_back(std::move(req));
  }
  {
    AnalysisRequest req;
    req.id = "indefinite-m1";
    req.system = circuits::makeNonPassiveIndefiniteM1();
    batch.push_back(std::move(req));
  }
  {
    AnalysisRequest req;
    req.id = "neg-feedthrough";
    req.system = circuits::makeNonPassiveNegativeFeedthrough(4);
    batch.push_back(std::move(req));
  }
  {
    AnalysisRequest req;
    req.id = "grade3";
    req.system = circuits::makeNonPassiveHigherOrderImpulse();
    batch.push_back(std::move(req));
  }

  AnalyzerOptions opts;
  opts.threads = 4;  // force actual concurrency even on small machines
  PassivityAnalyzer analyzer(opts);

  std::vector<Result<AnalysisReport>> results = analyzer.runBatch(batch);
  ASSERT_EQ(results.size(), batch.size());

  std::size_t passiveCount = 0, nonPassiveCount = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(results[i].ok())
        << batch[i].id << ": " << results[i].status().toString();
    EXPECT_EQ(results[i]->id, batch[i].id);
    (results[i]->passive ? passiveCount : nonPassiveCount) += 1;
    // Per-item reports must match a sequential single-shot run exactly
    // (up to wall-clock timings).
    Result<AnalysisReport> single = analyzer.analyze(batch[i]);
    ASSERT_TRUE(single.ok()) << batch[i].id;
    EXPECT_TRUE(results[i]->decisionEquals(*single)) << batch[i].id;
  }
  EXPECT_EQ(passiveCount, 5u);
  EXPECT_EQ(nonPassiveCount, 3u);
}

TEST(ApiBatch, EmptyBatchYieldsNoResults) {
  PassivityAnalyzer analyzer;
  EXPECT_TRUE(analyzer.runBatch({}).empty());
}

TEST(ApiBatch, PerRequestOptionOverridesAreHonored) {
  // skipPrerequisites on an unstable system: the default path reports
  // UnstableFiniteModes, the override path runs past the screen.
  ds::DescriptorSystem g = circuits::makeNonPassiveNegativeResistor(3);
  PassivityAnalyzer analyzer;

  AnalysisRequest plain;
  plain.system = g;
  Result<AnalysisReport> r1 = analyzer.analyze(plain);
  ASSERT_TRUE(r1.ok()) << r1.status().toString();
  EXPECT_FALSE(r1->passive);

  AnalysisRequest skipped = plain;
  core::PassivityOptions po;
  po.skipPrerequisites = true;
  skipped.options = po;
  Result<AnalysisReport> r2 = analyzer.analyze(skipped);
  ASSERT_TRUE(r2.ok()) << r2.status().toString();
  EXPECT_FALSE(r2->passive);
  EXPECT_NE(r2->verdict, ErrorCode::UnstableFiniteModes);
}

}  // namespace
}  // namespace shhpass::api
