// Golden-value end-to-end test: a hand-solvable series-RLC one-port where
// every quantity the library computes has a closed form.
//
// Circuit: port --R1-- n2 --L-- n3 --(C || R2)-- ground.
//   Z(s) = R1 + s L + R2 / (1 + s R2 C)
// Closed forms:
//   M1 = L (residue of the pole at infinity), M0 = R1,
//   Re Z(jw) = R1 + R2 / (1 + (w R2 C)^2)  (monotone in w),
//   passivity margin = min_w Re Z = R1 (attained at w = infinity),
//   Z(0) = R1 + R2.
#include <gtest/gtest.h>

#include <cmath>

#include "api/shhpass.hpp"
#include "circuits/generators.hpp"
#include "circuits/mna.hpp"
#include "circuits/netlist.hpp"
#include "core/margin.hpp"
#include "core/markov.hpp"
#include "core/passivity_test.hpp"
#include "core/reduction.hpp"
#include "ds/balance.hpp"
#include "ds/impulse_tests.hpp"

namespace shhpass {
namespace {

constexpr double kR1 = 0.75, kL = 0.4, kC = 0.2, kR2 = 3.0;

ds::DescriptorSystem goldenCircuit() {
  circuits::Netlist net(3);
  net.addResistor(1, 2, kR1);
  net.addInductor(2, 3, kL);
  net.addCapacitor(3, 0, kC);
  net.addResistor(3, 0, kR2);
  net.addPort(1);
  return circuits::stampMna(net);
}


TEST(Golden, TransferMatchesClosedForm) {
  ds::DescriptorSystem g = goldenCircuit();
  for (double w : {0.0, 0.5, 2.0, 50.0}) {
    ds::TransferValue z = ds::evalTransfer(g, 0.0, w);
    // Z(jw) = R1 + jwL + R2/(1 + jw R2 C).
    const double den = 1.0 + w * w * kR2 * kR2 * kC * kC;
    const double re = kR1 + kR2 / den;
    const double im = w * kL - w * kR2 * kR2 * kC / den;
    EXPECT_NEAR(z.re(0, 0), re, 1e-10) << "w=" << w;
    EXPECT_NEAR(z.im(0, 0), im, 1e-10) << "w=" << w;
  }
}

TEST(Golden, ModeCensus) {
  // States: 3 node voltages + 1 inductor current; only n3 has capacitance,
  // so rank(E) = 2 (C row + L row). n2 is purely inductive+resistive.
  ds::DescriptorSystem g = goldenCircuit();
  ds::ModeCensus mc = ds::censusModes(g);
  EXPECT_EQ(mc.order, 4u);
  EXPECT_EQ(mc.rankE, 2u);
  // One finite pole (the RC), one impulsive chain (the series L path),
  // nondynamic remainder.
  EXPECT_EQ(mc.finite, 1u);
  EXPECT_EQ(mc.impulsive, 1u);
  EXPECT_EQ(mc.nondynamic, 2u);
  EXPECT_FALSE(ds::isImpulseFree(g));
  EXPECT_EQ(ds::pencilIndex(g), 2u);
  EXPECT_FALSE(ds::hasGradeThreeChains(g));
}

TEST(Golden, M1IsTheInductance) {
  core::M1Extraction m1 = core::extractM1(goldenCircuit());
  ASSERT_EQ(m1.chainCount, 1u);
  EXPECT_TRUE(m1.psd);
  EXPECT_NEAR(m1.m1(0, 0), kL, 1e-10);
}

TEST(Golden, PassiveWithDiagnostics) {
  core::PassivityResult r = core::testPassivityShh(goldenCircuit());
  EXPECT_TRUE(r.passive) << core::failureStageName(r.failure);
  EXPECT_NEAR(r.m1(0, 0), kL, 1e-9);
  EXPECT_GT(r.removedImpulsive, 0u);
}

TEST(Golden, ReorderHealthOnWellConditionedSeed) {
  // On a tiny well-conditioned model every adjacent-block exchange of the
  // Eq.-(22) split must be accepted, with residual and drift at round-off.
  core::PassivityResult r = core::testPassivityShh(goldenCircuit());
  EXPECT_EQ(r.reorder.rejectedSwaps, 0u);
  EXPECT_TRUE(r.reorder.clean());
  EXPECT_LE(r.reorder.maxResidual, 1e-10);
  EXPECT_LE(r.reorder.eigenvalueDrift, 1e-8);
}

TEST(Golden, MarginIsSeriesResistance) {
  core::PassivityMargin pm = core::passivityMargin(goldenCircuit(), 1e-8);
  ASSERT_TRUE(pm.defined);
  // min_w Re Z = R1 at w -> infinity.
  EXPECT_NEAR(pm.margin, kR1, 1e-4);
}

TEST(Golden, DcValue) {
  ds::TransferValue z = ds::evalTransfer(goldenCircuit(), 0.0, 0.0);
  EXPECT_NEAR(z.re(0, 0), kR1 + kR2, 1e-10);
  EXPECT_NEAR(z.im(0, 0), 0.0, 1e-12);
}

TEST(Golden, RankPolicyParityOnGoldenModelSet) {
  // decisionEquals-style parity for the shared rank policy: the full
  // decision path of the golden benchmark-model set, captured BEFORE the
  // per-consumer hand-rolled singular-value cutoffs were unified onto
  // rankFromSingularValues (blocked-SVD PR). The unification — and the
  // blocked kernel itself — must not change a single verdict or
  // deflation count.
  struct Expected {
    std::size_t order;
    bool impulsive;
    std::size_t remImp, remNon, chains, properOrder;
  };
  const Expected table[] = {
      {25, true, 10, 12, 3, 14},  {25, false, 0, 16, 0, 17},
      {30, true, 10, 14, 3, 18},  {30, false, 0, 18, 0, 21},
      {35, true, 14, 16, 4, 20},  {35, false, 0, 22, 0, 24},
      {64, true, 26, 28, 7, 37},  {64, false, 0, 42, 0, 43},
      {100, true, 38, 42, 10, 60}, {100, false, 0, 66, 0, 67},
  };
  const api::PassivityAnalyzer analyzer;
  for (const Expected& x : table) {
    const ds::DescriptorSystem g =
        circuits::makeBenchmarkModel(x.order, x.impulsive);
    api::Result<api::AnalysisReport> r = analyzer.analyze(g);
    ASSERT_TRUE(r.ok()) << x.order << (x.impulsive ? " imp" : " plain");
    EXPECT_TRUE(r->passive) << x.order;
    EXPECT_EQ(r->removedImpulsive, x.remImp) << x.order;
    EXPECT_EQ(r->removedNondynamic, x.remNon) << x.order;
    EXPECT_EQ(r->impulsiveChains, x.chains) << x.order;
    EXPECT_EQ(r->properOrder, x.properOrder) << x.order;
    // The rank-policy health record is populated and comfortable: every
    // decision kept/dropped with a wide margin around the cutoff.
    EXPECT_GE(r->rankPolicy.decisions, 4u) << x.order;
    EXPECT_GT(r->rankPolicy.minKeptMargin, 10.0) << x.order;
    EXPECT_LT(r->rankPolicy.maxDroppedMargin, 0.1) << x.order;
    // Determinism: a re-run decisionEquals the first (rankPolicy fields
    // participate in decisionEquals).
    api::Result<api::AnalysisReport> again = analyzer.analyze(g);
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(r->decisionEquals(*again)) << x.order;
  }
}

TEST(Golden, StageGraphParityOnGoldenModelSet) {
  // Level-1 parity pin: every golden model (plus the non-passive exits)
  // analyzed through the dependency-ordered stage graph
  // (Pipeline::runGraph, AnalyzerOptions::stageGraph) must produce a
  // report bit-identical to the sequential pipeline — verdicts,
  // diagnostics, m1, rankPolicy/schur/staircase blocks, warnings, and
  // per-stage names/statuses, per decisionEquals. Graph threads vary to
  // cover the serial-pool, two-worker, and oversubscribed layouts.
  const api::PassivityAnalyzer sequential;
  std::vector<ds::DescriptorSystem> models;
  for (std::size_t order : {25u, 30u, 35u, 64u, 100u}) {
    models.push_back(circuits::makeBenchmarkModel(order, true));
    models.push_back(circuits::makeBenchmarkModel(order, false));
  }
  models.push_back(circuits::makeNonPassiveNegativeResistor(6));
  models.push_back(circuits::makeNonPassiveNegativeFeedthrough(5));
  models.push_back(circuits::makeNonPassiveIndefiniteM1());
  models.push_back(circuits::makeNonPassiveHigherOrderImpulse());
  models.push_back(goldenCircuit());

  for (std::size_t graphThreads : {1u, 2u, 4u}) {
    api::AnalyzerOptions opts;
    opts.stageGraph = true;
    opts.stageGraphThreads = graphThreads;
    const api::PassivityAnalyzer graph(opts);
    for (std::size_t k = 0; k < models.size(); ++k) {
      api::Result<api::AnalysisReport> a = sequential.analyze(models[k]);
      api::Result<api::AnalysisReport> b = graph.analyze(models[k]);
      ASSERT_EQ(a.ok(), b.ok()) << "model " << k;
      if (!a.ok()) {
        EXPECT_EQ(a.status().code(), b.status().code()) << "model " << k;
        continue;
      }
      EXPECT_TRUE(a->decisionEquals(*b))
          << "model " << k << " graphThreads " << graphThreads;
      // The graph run records its execution. (The baseline analyzer may
      // itself be running the graph when SHHPASS_STAGE_GRAPH forces it —
      // the tsan CI job does — which is exactly the parity the
      // decisionEquals above already covers.)
      EXPECT_TRUE(b->scheduler.stageGraph) << "model " << k;
      EXPECT_GE(b->scheduler.stageGraphExecuted, b->stages.size())
          << "model " << k;
    }
  }
}

TEST(Golden, ReductionReproducesExactly) {
  // The proper part is order 1, so "reduction" to order >= 1 must be exact
  // including M0, M1 and the pole location.
  core::ReducedModel rom = core::reduceDescriptor(goldenCircuit(), 4);
  ASSERT_TRUE(rom.ok);
  EXPECT_EQ(rom.properOrder, 1u);
  EXPECT_EQ(rom.impulsiveRank, 1u);
  for (double w : {0.0, 1.0, 30.0}) {
    ds::TransferValue a = ds::evalTransfer(goldenCircuit(), 0.0, w);
    ds::TransferValue b = ds::evalTransfer(rom.sys, 0.0, w);
    EXPECT_NEAR(a.re(0, 0), b.re(0, 0), 1e-8) << "w=" << w;
    EXPECT_NEAR(a.im(0, 0), b.im(0, 0), 1e-8) << "w=" << w;
  }
}

// ---------------------------------------------------------------------
// Golden netlist corpus (tests/data/*.cir, path baked in by CMake as
// SHHPASS_TEST_DATA_DIR): real files through the full ingestion path —
// parseSpiceFile -> stampMna -> PassivityAnalyzer — with pinned verdicts.

std::string dataFile(const char* name) {
  return std::string(SHHPASS_TEST_DATA_DIR) + "/" + name;
}

api::AnalysisReport analyzeParsed(const circuits::ParsedNetlist& parsed) {
  const api::PassivityAnalyzer analyzer;
  api::Result<ds::DescriptorSystem> sys =
      api::stampNetlist(parsed.netlist);
  EXPECT_TRUE(sys.ok()) << sys.status().toString();
  api::Result<api::AnalysisReport> report = analyzer.analyze(*sys);
  EXPECT_TRUE(report.ok()) << report.status().toString();
  return *report;
}

TEST(GoldenNetlist, CapAtPortLadderIsPassiveAndImpulseFree) {
  circuits::ParsedNetlist parsed =
      circuits::parseSpiceFile(dataFile("cap_at_port_ladder.cir"));
  ASSERT_TRUE(parsed.ok()) << parsed.errors.front().toString();
  EXPECT_EQ(parsed.netlist.numNodes(), 5);
  EXPECT_EQ(parsed.netlist.components().size(), 8u);
  ASSERT_EQ(parsed.netlist.ports().size(), 1u);
  // Engineering suffixes: 1p == 1pF == 1e-12, 1n == 1nH == 1e-9.
  EXPECT_EQ(parsed.netlist.components()[0].value, 1e-12);
  EXPECT_EQ(parsed.netlist.components()[3].value, 1e-12);
  EXPECT_EQ(parsed.netlist.components()[2].value, 1e-9);
  EXPECT_EQ(parsed.netlist.components()[5].value, 1e-9);

  const api::AnalysisReport report = analyzeParsed(parsed);
  EXPECT_TRUE(report.passive);
  EXPECT_EQ(report.verdict, api::ErrorCode::Ok);
  EXPECT_EQ(report.order, 7u);
  EXPECT_EQ(report.ports, 1u);
  EXPECT_EQ(report.properOrder, 5u);
  // The shunt cap AT the port keeps the driving point impulse-free.
  EXPECT_EQ(report.removedImpulsive, 0u);
  // min_w Re Z -> 0 as the port cap shorts at w -> infinity.
  core::PassivityMargin pm =
      core::passivityMargin(circuits::stampMna(parsed.netlist));
  ASSERT_TRUE(pm.defined);
  EXPECT_NEAR(pm.margin, 0.0, 1e-6);
}

TEST(GoldenNetlist, NonPassiveMutantNeedsActiveFlagAndFailsUnstable) {
  // Without the mutant flag the negative resistor is a typed parse error
  // on its exact line.
  circuits::ParsedNetlist rejected =
      circuits::parseSpiceFile(dataFile("nonpassive_mutant.cir"));
  ASSERT_FALSE(rejected.ok());
  ASSERT_EQ(rejected.errors.size(), 1u);
  EXPECT_EQ(rejected.errors[0].kind,
            circuits::SpiceErrorKind::NonPositiveValue);
  EXPECT_EQ(rejected.errors[0].line, 7u);

  circuits::SpiceParseOptions active;
  active.allowActiveElements = true;
  circuits::ParsedNetlist parsed =
      circuits::parseSpiceFile(dataFile("nonpassive_mutant.cir"), active);
  ASSERT_TRUE(parsed.ok()) << parsed.errors.front().toString();
  const api::AnalysisReport report = analyzeParsed(parsed);
  EXPECT_FALSE(report.passive);
  // Negative shunt R puts the finite RC pole in the right half plane.
  EXPECT_EQ(report.verdict, api::ErrorCode::UnstableFiniteModes);
  core::PassivityMargin pm =
      core::passivityMargin(circuits::stampMna(parsed.netlist));
  EXPECT_FALSE(pm.defined);
}

TEST(GoldenNetlist, MultiportTeeSymbolicNamesAndVerdict) {
  circuits::ParsedNetlist parsed =
      circuits::parseSpiceFile(dataFile("multiport_tee.cir"));
  ASSERT_TRUE(parsed.ok()) << parsed.errors.front().toString();
  // Symbolic nodes resolve in first-appearance order above ground.
  const std::vector<std::string> expectedNames = {"0", "in", "mid", "out",
                                                  "tail"};
  EXPECT_EQ(parsed.nodeNames, expectedNames);
  // Ports in declaration order: in, out, mid.
  const std::vector<int> expectedPorts = {1, 3, 2};
  EXPECT_EQ(parsed.netlist.ports(), expectedPorts);

  const api::AnalysisReport report = analyzeParsed(parsed);
  EXPECT_TRUE(report.passive);
  EXPECT_EQ(report.verdict, api::ErrorCode::Ok);
  EXPECT_EQ(report.order, 5u);
  EXPECT_EQ(report.ports, 3u);
  EXPECT_EQ(report.removedImpulsive, 2u);
}

TEST(GoldenNetlist, CorpusRoundTripsThroughWriter) {
  for (const char* name : {"cap_at_port_ladder.cir", "multiport_tee.cir"}) {
    circuits::ParsedNetlist parsed = circuits::parseSpiceFile(dataFile(name));
    ASSERT_TRUE(parsed.ok()) << name;
    const std::string emitted = circuits::writeSpice(parsed.netlist);
    circuits::ParsedNetlist reparsed = circuits::parseSpice(emitted);
    ASSERT_TRUE(reparsed.ok()) << name;
    // Canonical emission is a fixed point: emit(parse(emit(n))) == emit(n).
    EXPECT_EQ(circuits::writeSpice(reparsed.netlist), emitted) << name;
    // And the reparsed netlist stamps the same decision input.
    const api::AnalysisReport a = analyzeParsed(parsed);
    const api::AnalysisReport b = analyzeParsed(reparsed);
    EXPECT_TRUE(a.decisionEquals(b)) << name;
  }
}

}  // namespace
}  // namespace shhpass
